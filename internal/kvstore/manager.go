package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"subzero/internal/obs"
)

// Manager allocates one Store per namespace — the "operator specific
// datastores" of the paper's architecture (Figure 3). A Manager rooted at a
// directory creates FileStores under it; a Manager with an empty root hands
// out MemStores, which tests and CPU-bound benchmarks use.
type Manager struct {
	mu      sync.Mutex
	root    string
	stores  map[string]Store
	metrics *obs.KVObs
}

// NewManager creates a manager. If root is non-empty the directory is
// created and stores persist there as one log file per namespace;
// otherwise stores are in-memory.
func NewManager(root string) (*Manager, error) {
	if root != "" {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("kvstore: create root %s: %w", root, err)
		}
	}
	return &Manager{root: root, stores: make(map[string]Store)}, nil
}

// InMemory reports whether the manager hands out memory-backed stores.
func (m *Manager) InMemory() bool { return m.root == "" }

// SetMetrics attaches obs counters; stores opened afterwards are wrapped
// so every Get/GetBatch/Put/PutBatch/Scan is counted. Attach before the
// first Open — already-open stores stay unwrapped.
func (m *Manager) SetMetrics(kv *obs.KVObs) {
	m.mu.Lock()
	m.metrics = kv
	m.mu.Unlock()
}

// Open returns the store for a namespace, creating it on first use.
// Namespaces are arbitrary strings; they are sanitized into file names.
func (m *Manager) Open(namespace string) (Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.stores[namespace]; ok {
		return s, nil
	}
	var s Store
	if m.root == "" {
		s = NewMem()
	} else {
		fs, err := OpenFile(filepath.Join(m.root, sanitize(namespace)+".log"))
		if err != nil {
			return nil, err
		}
		s = fs
	}
	s = Instrument(s, m.metrics)
	m.stores[namespace] = s
	return s, nil
}

// dropLocked closes and removes one namespace's store and backing file.
// Callers hold m.mu.
func (m *Manager) dropLocked(namespace string) error {
	s, ok := m.stores[namespace]
	if !ok {
		return nil
	}
	delete(m.stores, namespace)
	closeErr := s.Close()
	if m.root != "" {
		base := filepath.Join(m.root, sanitize(namespace)+".log")
		for _, path := range []string{base, base + ".meta", base + ".meta.tmp"} {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) && closeErr == nil {
				closeErr = err
			}
		}
	}
	return closeErr
}

// Drop closes and deletes a namespace's store and backing file.
func (m *Manager) Drop(namespace string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropLocked(namespace)
}

// DropPrefix closes and deletes every namespace whose name starts with
// prefix, returning how many stores were released. The run registry uses
// it to free all lineage stores of a dropped run in one call.
func (m *Manager) DropPrefix(prefix string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dropped int
	var firstErr error
	for ns := range m.stores {
		if !strings.HasPrefix(ns, prefix) {
			continue
		}
		dropped++
		if err := m.dropLocked(ns); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return dropped, firstErr
}

// Namespaces returns the open namespaces in sorted order.
func (m *Manager) Namespaces() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.stores))
	for ns := range m.stores {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the size of every open store — the disk-overhead number
// reported by the benchmark figures.
func (m *Manager) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.stores {
		total += s.SizeBytes()
	}
	return total
}

// SyncAll flushes every open store.
func (m *Manager) SyncAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for ns, s := range m.stores {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync %s: %w", ns, err)
		}
	}
	return nil
}

// Close closes every open store.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for ns, s := range m.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("kvstore: close %s: %w", ns, err)
		}
	}
	m.stores = make(map[string]Store)
	return firstErr
}

// sanitize maps a namespace to a safe file-name fragment, injectively:
// distinct namespaces always get distinct fragments, so two operators'
// lineage stores can never silently merge on disk (previously "a/b" and
// "a_b" both mapped to "a_b").
//
// The encoding is a prefix-free escape: lowercase letters, digits, '-',
// and '.' pass through; '_' becomes "__"; an uppercase letter becomes
// "_u" plus its lowercase form; any other rune becomes "_x<hex>_".
// Decoding left to right is unambiguous — after a '_' the next byte is
// '_' (a literal underscore), 'u' (one case-folded letter), or 'x' (a
// hex escape terminated by '_') — so the mapping is invertible and
// therefore injective. Because the output alphabet contains no uppercase
// at all, injectivity survives case-insensitive filesystems ("Node" and
// "node" get distinct files on macOS/Windows too).
//
// Layouts written by the older lossy mapping are not migrated: a legacy
// file whose name no longer matches is simply never opened again, which
// is safe because lineage is a recoverable cache — re-executing the
// workflow rebuilds it.
func sanitize(ns string) string {
	if ns == "" {
		// "_e_" is not producible by the escape above ('_' is always
		// followed by '_', 'u', or 'x'), so it cannot collide.
		return "_e_"
	}
	var b strings.Builder
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteByte('_')
			b.WriteByte('u')
			b.WriteRune(r - 'A' + 'a')
		case r == '_':
			b.WriteString("__")
		default:
			fmt.Fprintf(&b, "_x%x_", r)
		}
	}
	return b.String()
}
