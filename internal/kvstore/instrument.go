package kvstore

import (
	"fmt"
	"time"

	"subzero/internal/obs"
)

// instrumented decorates a Store with obs counters. The Manager wraps
// every store it opens once metrics are attached, so all lineage I/O —
// including the 256-key GetBatch lookup hot path and the ingest workers'
// group commits — is accounted without the callers knowing.
//
// The wrapper claims every optional Store extension and forwards through
// the package helpers, which is sound because the Manager only creates
// MemStore and FileStore and both implement all three extensions. Single
// Gets and Puts pay only atomic adds; batch calls additionally pay two
// clock reads and one closure allocation, amortized over the batch.
type instrumented struct {
	s Store
	m *obs.KVObs
}

// Instrument wraps s so every operation is counted in m. It returns s
// unchanged when m is nil.
func Instrument(s Store, m *obs.KVObs) Store {
	if m == nil {
		return s
	}
	return &instrumented{s: s, m: m}
}

func (i *instrumented) Put(key, val []byte) error {
	err := i.s.Put(key, val)
	i.m.Puts.Inc()
	i.m.KeysWritten.Inc()
	if err == nil {
		i.m.BytesWritten.Add(int64(len(val)))
	}
	return err
}

func (i *instrumented) Get(key []byte) ([]byte, bool, error) {
	v, ok, err := i.s.Get(key)
	i.m.Gets.Inc()
	i.m.KeysRead.Inc()
	if ok {
		i.m.BytesRead.Add(int64(len(v)))
	}
	return v, ok, err
}

func (i *instrumented) GetBatch(keys [][]byte, fn func(idx int, val []byte, ok bool) bool) error {
	start := time.Now()
	var bytes int64
	err := GetBatch(i.s, keys, func(idx int, val []byte, ok bool) bool {
		if ok {
			bytes += int64(len(val))
		}
		return fn(idx, val, ok)
	})
	i.m.GetBatchLatency.ObserveSince(start)
	i.m.GetBatches.Inc()
	i.m.KeysRead.Add(int64(len(keys)))
	i.m.BytesRead.Add(bytes)
	return err
}

func (i *instrumented) PutBatch(kvs []KV) error {
	start := time.Now()
	err := PutBatch(i.s, kvs)
	i.m.PutBatchLatency.ObserveSince(start)
	i.m.PutBatches.Inc()
	i.m.KeysWritten.Add(int64(len(kvs)))
	if err == nil {
		var bytes int64
		for _, kv := range kvs {
			bytes += int64(len(kv.Val))
		}
		i.m.BytesWritten.Add(bytes)
	}
	return err
}

func (i *instrumented) CommitMeta(val []byte) error {
	mc, ok := i.s.(MetaCommitter)
	if !ok {
		return fmt.Errorf("kvstore: store does not support metadata commits")
	}
	err := mc.CommitMeta(val)
	if err == nil {
		i.m.BytesWritten.Add(int64(len(val)))
	}
	return err
}

func (i *instrumented) LoadMeta() ([]byte, bool, error) {
	mc, okc := i.s.(MetaCommitter)
	if !okc {
		return nil, false, nil
	}
	v, ok, err := mc.LoadMeta()
	if ok {
		i.m.BytesRead.Add(int64(len(v)))
	}
	return v, ok, err
}

func (i *instrumented) Scan(fn func(key, val []byte) bool) error {
	i.m.Scans.Inc()
	return i.s.Scan(func(key, val []byte) bool {
		i.m.KeysRead.Inc()
		i.m.BytesRead.Add(int64(len(val)))
		return fn(key, val)
	})
}

func (i *instrumented) Len() int         { return i.s.Len() }
func (i *instrumented) SizeBytes() int64 { return i.s.SizeBytes() }
func (i *instrumented) Sync() error      { return i.s.Sync() }
func (i *instrumented) Close() error     { return i.s.Close() }
