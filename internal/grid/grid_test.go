package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShapeValidate(t *testing.T) {
	cases := []struct {
		name  string
		shape Shape
		ok    bool
	}{
		{"1d", Shape{5}, true},
		{"2d", Shape{512, 2000}, true},
		{"3d", Shape{4, 5, 6}, true},
		{"empty", Shape{}, false},
		{"zero dim", Shape{5, 0}, false},
		{"negative dim", Shape{-1, 3}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.shape.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate(%v) err=%v, want ok=%v", tc.shape, err, tc.ok)
			}
		})
	}
}

func TestShapeSizeAndEqual(t *testing.T) {
	s := Shape{3, 4, 5}
	if got := s.Size(); got != 60 {
		t.Fatalf("Size=%d, want 60", got)
	}
	if !s.Equal(Shape{3, 4, 5}) {
		t.Fatal("Equal should match identical shape")
	}
	if s.Equal(Shape{3, 4}) || s.Equal(Shape{3, 4, 6}) {
		t.Fatal("Equal matched different shape")
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 3 {
		t.Fatal("Clone aliases original")
	}
}

func TestRavelUnravelRoundTrip(t *testing.T) {
	sp := NewSpace(Shape{3, 7, 11})
	for idx := uint64(0); idx < sp.Size(); idx++ {
		c := sp.Unravel(idx)
		if !sp.Contains(c) {
			t.Fatalf("Unravel(%d)=%v out of bounds", idx, c)
		}
		if back := sp.Ravel(c); back != idx {
			t.Fatalf("Ravel(Unravel(%d))=%d", idx, back)
		}
	}
}

func TestRavelRowMajorOrder(t *testing.T) {
	sp := NewSpace(Shape{2, 3})
	want := map[string]uint64{
		"[0 0]": 0, "[0 1]": 1, "[0 2]": 2,
		"[1 0]": 3, "[1 1]": 4, "[1 2]": 5,
	}
	for idx := uint64(0); idx < 6; idx++ {
		c := sp.Unravel(idx)
		if want[c.String()] != idx {
			t.Fatalf("row-major order broken: %v -> %d", c, idx)
		}
	}
}

func TestUnravelInto(t *testing.T) {
	sp := NewSpace(Shape{4, 9})
	dst := make(Coord, 2)
	sp.UnravelInto(13, dst)
	if !dst.Equal(Coord{1, 4}) {
		t.Fatalf("UnravelInto(13)=%v, want [1 4]", dst)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Lo: Coord{1, 2}, Hi: Coord{3, 5}}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.Area(); got != 12 {
		t.Fatalf("Area=%d, want 12", got)
	}
	if !r.Contains(Coord{2, 3}) || r.Contains(Coord{0, 3}) || r.Contains(Coord{2, 6}) {
		t.Fatal("Contains wrong")
	}
	bad := Rect{Lo: Coord{3, 2}, Hi: Coord{1, 5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted rect validated")
	}
}

func TestRectIntersectsUnion(t *testing.T) {
	a := Rect{Lo: Coord{0, 0}, Hi: Coord{2, 2}}
	b := Rect{Lo: Coord{2, 2}, Hi: Coord{4, 4}}
	c := Rect{Lo: Coord{3, 3}, Hi: Coord{4, 4}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("touching rects must intersect (inclusive bounds)")
	}
	if a.Intersects(c) || c.Intersects(a) {
		t.Fatal("disjoint rects must not intersect")
	}
	u := a.Union(c)
	if !u.Equal(Rect{Lo: Coord{0, 0}, Hi: Coord{4, 4}}) {
		t.Fatalf("Union=%v", u)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(c) {
		t.Fatal("union must contain operands")
	}
}

func TestRectClip(t *testing.T) {
	s := Shape{10, 10}
	r := Rect{Lo: Coord{-3, 8}, Hi: Coord{4, 15}}
	c, ok := r.Clip(s)
	if !ok {
		t.Fatal("clip produced empty")
	}
	if !c.Equal(Rect{Lo: Coord{0, 8}, Hi: Coord{4, 9}}) {
		t.Fatalf("Clip=%v", c)
	}
	if _, ok := (Rect{Lo: Coord{11, 0}, Hi: Coord{12, 5}}).Clip(s); ok {
		t.Fatal("out-of-range rect should clip to empty")
	}
}

func TestRectCells(t *testing.T) {
	sp := NewSpace(Shape{4, 4})
	r := Rect{Lo: Coord{1, 1}, Hi: Coord{2, 2}}
	cells := r.Cells(sp, nil)
	want := []uint64{5, 6, 9, 10}
	if len(cells) != len(want) {
		t.Fatalf("Cells=%v", cells)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("Cells=%v, want %v", cells, want)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	sp := NewSpace(Shape{5, 5})
	cells := []uint64{sp.Ravel(Coord{1, 3}), sp.Ravel(Coord{4, 0}), sp.Ravel(Coord{2, 2})}
	bb, ok := BoundingBox(sp, cells)
	if !ok {
		t.Fatal("expected bbox")
	}
	if !bb.Equal(Rect{Lo: Coord{1, 0}, Hi: Coord{4, 3}}) {
		t.Fatalf("bbox=%v", bb)
	}
	if _, ok := BoundingBox(sp, nil); ok {
		t.Fatal("empty input must yield no bbox")
	}
}

func TestNeighborhood(t *testing.T) {
	sp := NewSpace(Shape{5, 5})
	// Interior point, radius 1: 3x3 block.
	n := Neighborhood(sp, Coord{2, 2}, 1, nil)
	if len(n) != 9 {
		t.Fatalf("interior neighborhood size=%d, want 9", len(n))
	}
	// Corner, radius 1: 2x2 block.
	n = Neighborhood(sp, Coord{0, 0}, 1, nil)
	if len(n) != 4 {
		t.Fatalf("corner neighborhood size=%d, want 4", len(n))
	}
	// Radius 0: only the center.
	n = Neighborhood(sp, Coord{3, 3}, 0, nil)
	if len(n) != 1 || n[0] != sp.Ravel(Coord{3, 3}) {
		t.Fatalf("radius-0 neighborhood=%v", n)
	}
	// Radius 3 matching the paper's cosmic-ray detector: 7x7 = 49 interior.
	sp2 := NewSpace(Shape{100, 100})
	n = Neighborhood(sp2, Coord{50, 50}, 3, nil)
	if len(n) != 49 {
		t.Fatalf("radius-3 neighborhood size=%d, want 49", len(n))
	}
}

func TestSortCells(t *testing.T) {
	cells := []uint64{5, 1, 5, 3, 1, 9}
	got := SortCells(cells)
	want := []uint64{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("SortCells=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortCells=%v, want %v", got, want)
		}
	}
	if out := SortCells(nil); len(out) != 0 {
		t.Fatal("nil input should remain empty")
	}
}

func TestSetOpsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := randomSortedSet(rng, 30, 50)
		b := randomSortedSet(rng, 30, 50)
		ref := map[uint64]int{}
		for _, v := range a {
			ref[v] |= 1
		}
		for _, v := range b {
			ref[v] |= 2
		}
		u := UnionSorted(a, b)
		if len(u) != len(ref) {
			t.Fatalf("union size=%d, want %d", len(u), len(ref))
		}
		for i := 1; i < len(u); i++ {
			if u[i] <= u[i-1] {
				t.Fatal("union not strictly sorted")
			}
		}
		inter := IntersectSorted(a, b)
		nBoth := 0
		for _, m := range ref {
			if m == 3 {
				nBoth++
			}
		}
		if len(inter) != nBoth {
			t.Fatalf("intersect size=%d, want %d", len(inter), nBoth)
		}
		for _, v := range inter {
			if ref[v] != 3 {
				t.Fatal("intersect element not in both")
			}
		}
		for _, v := range a {
			if !ContainsSorted(a, v) {
				t.Fatal("ContainsSorted missed present element")
			}
		}
		if ContainsSorted(a, 1<<60) {
			t.Fatal("ContainsSorted found absent element")
		}
	}
}

func randomSortedSet(rng *rand.Rand, maxLen int, universe uint64) []uint64 {
	n := rng.Intn(maxLen)
	s := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, uint64(rng.Int63n(int64(universe))))
	}
	return SortCells(s)
}

// Property: Ravel/Unravel round-trips for arbitrary coordinates in
// arbitrary (small) shapes.
func TestQuickRavelRoundTrip(t *testing.T) {
	f := func(dims [3]uint8, cseed uint32) bool {
		shape := Shape{int(dims[0]%17) + 1, int(dims[1]%17) + 1, int(dims[2]%17) + 1}
		sp := NewSpace(shape)
		idx := uint64(cseed) % sp.Size()
		return sp.Ravel(sp.Unravel(idx)) == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a rectangle's Cells enumeration has exactly Area entries, all
// contained in the rect, in strictly ascending linear order.
func TestQuickRectCells(t *testing.T) {
	f := func(lo0, lo1, ext0, ext1 uint8) bool {
		sp := NewSpace(Shape{40, 40})
		r := Rect{
			Lo: Coord{int(lo0 % 30), int(lo1 % 30)},
			Hi: Coord{int(lo0%30) + int(ext0%8), int(lo1%30) + int(ext1%8)},
		}
		cells := r.Cells(sp, nil)
		if uint64(len(cells)) != r.Area() {
			return false
		}
		for i, idx := range cells {
			if !r.Contains(sp.Unravel(idx)) {
				return false
			}
			if i > 0 && cells[i] <= cells[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRavel(b *testing.B) {
	sp := NewSpace(Shape{512, 2000})
	c := Coord{301, 1543}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sp.Ravel(c)
	}
}

func BenchmarkNeighborhoodR3(b *testing.B) {
	sp := NewSpace(Shape{512, 2000})
	c := Coord{256, 1000}
	buf := make([]uint64, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Neighborhood(sp, c, 3, buf[:0])
	}
}
