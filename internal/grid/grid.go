// Package grid provides the coordinate geometry underlying the SubZero
// array model: shapes, coordinates, rectangles, and the row-major
// linearization ("bit-packing" in the paper, §VI-B) used to address cells.
//
// Throughout the system a cell inside an n-dimensional array is identified
// either by a Coord (a vector of per-dimension positions) or, more
// compactly, by its row-major linear index within the array's Shape, stored
// as a uint64. All lineage encodings operate on linear indices; Coords
// appear only at API boundaries (mapping functions, user queries).
package grid

import (
	"fmt"
	"sort"
)

// Shape describes the extent of each dimension of an array. All extents are
// strictly positive.
type Shape []int

// Coord is a position inside an array: one value per dimension, each in
// [0, Shape[d]).
type Coord []int

// Validate returns an error unless every extent is positive and the total
// cell count fits in a uint64.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("grid: empty shape")
	}
	total := uint64(1)
	for d, n := range s {
		if n <= 0 {
			return fmt.Errorf("grid: shape dimension %d has non-positive extent %d", d, n)
		}
		next := total * uint64(n)
		if next/uint64(n) != total {
			return fmt.Errorf("grid: shape %v overflows uint64 cell count", []int(s))
		}
		total = next
	}
	return nil
}

// Size returns the total number of cells in the shape.
func (s Shape) Size() uint64 {
	total := uint64(1)
	for _, n := range s {
		total *= uint64(n)
	}
	return total
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Contains reports whether c is a valid coordinate within the shape.
func (s Shape) Contains(c Coord) bool {
	if len(c) != len(s) {
		return false
	}
	for d := range c {
		if c[d] < 0 || c[d] >= s[d] {
			return false
		}
	}
	return true
}

func (s Shape) String() string { return fmt.Sprintf("%v", []int(s)) }

// Clone returns an independent copy of the coordinate.
func (c Coord) Clone() Coord {
	o := make(Coord, len(c))
	copy(o, c)
	return o
}

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

func (c Coord) String() string { return fmt.Sprintf("%v", []int(c)) }

// Space is a Shape with precomputed strides; it performs the hot
// Coord<->linear-index conversions. A Space is immutable and safe for
// concurrent use.
type Space struct {
	shape   Shape
	strides []uint64
	size    uint64
}

// NewSpace builds a Space for the given shape. It panics on an invalid
// shape; callers constructing shapes from user input should call
// Shape.Validate first.
func NewSpace(shape Shape) *Space {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	sp := &Space{shape: shape.Clone(), strides: make([]uint64, len(shape))}
	stride := uint64(1)
	for d := len(shape) - 1; d >= 0; d-- {
		sp.strides[d] = stride
		stride *= uint64(shape[d])
	}
	sp.size = stride
	return sp
}

// Shape returns the space's shape. Callers must not modify it.
func (sp *Space) Shape() Shape { return sp.shape }

// Rank returns the number of dimensions.
func (sp *Space) Rank() int { return len(sp.shape) }

// Size returns the total number of cells.
func (sp *Space) Size() uint64 { return sp.size }

// Contains reports whether c lies inside the space.
func (sp *Space) Contains(c Coord) bool { return sp.shape.Contains(c) }

// Ravel converts a coordinate to its row-major linear index. The coordinate
// must be inside the space.
func (sp *Space) Ravel(c Coord) uint64 {
	var idx uint64
	for d := range c {
		idx += uint64(c[d]) * sp.strides[d]
	}
	return idx
}

// Unravel converts a linear index back to a coordinate.
func (sp *Space) Unravel(idx uint64) Coord {
	c := make(Coord, len(sp.shape))
	sp.UnravelInto(idx, c)
	return c
}

// UnravelInto writes the coordinate for idx into dst, which must have
// length equal to the space's rank. It avoids allocation in hot loops.
func (sp *Space) UnravelInto(idx uint64, dst Coord) {
	for d := range sp.shape {
		dst[d] = int(idx / sp.strides[d])
		idx %= sp.strides[d]
	}
}

// Rect is an axis-aligned hyper-rectangle with inclusive bounds, used for
// region bounding boxes and as the key type of the R-tree index.
type Rect struct {
	Lo, Hi Coord
}

// RectOf returns the degenerate rectangle covering a single coordinate.
func RectOf(c Coord) Rect {
	return Rect{Lo: c.Clone(), Hi: c.Clone()}
}

// Validate returns an error unless Lo and Hi have equal rank and Lo <= Hi
// in every dimension.
func (r Rect) Validate() error {
	if len(r.Lo) != len(r.Hi) {
		return fmt.Errorf("grid: rect rank mismatch %d vs %d", len(r.Lo), len(r.Hi))
	}
	if len(r.Lo) == 0 {
		return fmt.Errorf("grid: empty rect")
	}
	for d := range r.Lo {
		if r.Lo[d] > r.Hi[d] {
			return fmt.Errorf("grid: rect inverted in dimension %d: [%d,%d]", d, r.Lo[d], r.Hi[d])
		}
	}
	return nil
}

// Rank returns the dimensionality of the rectangle.
func (r Rect) Rank() int { return len(r.Lo) }

// Area returns the number of cells covered by the rectangle.
func (r Rect) Area() uint64 {
	area := uint64(1)
	for d := range r.Lo {
		area *= uint64(r.Hi[d] - r.Lo[d] + 1)
	}
	return area
}

// Contains reports whether the coordinate lies inside the rectangle.
func (r Rect) Contains(c Coord) bool {
	if len(c) != len(r.Lo) {
		return false
	}
	for d := range c {
		if c[d] < r.Lo[d] || c[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for d := range r.Lo {
		if o.Lo[d] < r.Lo[d] || o.Hi[d] > r.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether the two rectangles share at least one cell.
func (r Rect) Intersects(o Rect) bool {
	if len(r.Lo) != len(o.Lo) {
		return false
	}
	for d := range r.Lo {
		if r.Hi[d] < o.Lo[d] || o.Hi[d] < r.Lo[d] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	u := Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
	for d := range u.Lo {
		if o.Lo[d] < u.Lo[d] {
			u.Lo[d] = o.Lo[d]
		}
		if o.Hi[d] > u.Hi[d] {
			u.Hi[d] = o.Hi[d]
		}
	}
	return u
}

// Clip intersects the rectangle with the bounds of the shape, returning
// false if the intersection is empty.
func (r Rect) Clip(s Shape) (Rect, bool) {
	c := Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
	for d := range c.Lo {
		if c.Lo[d] < 0 {
			c.Lo[d] = 0
		}
		if c.Hi[d] > s[d]-1 {
			c.Hi[d] = s[d] - 1
		}
		if c.Lo[d] > c.Hi[d] {
			return Rect{}, false
		}
	}
	return c, true
}

// Equal reports whether two rectangles have identical bounds.
func (r Rect) Equal(o Rect) bool { return r.Lo.Equal(o.Lo) && r.Hi.Equal(o.Hi) }

func (r Rect) String() string { return fmt.Sprintf("[%v..%v]", []int(r.Lo), []int(r.Hi)) }

// Cells appends the linear indices of every cell in the rectangle to dst
// and returns the extended slice; indices are produced in ascending order.
func (r Rect) Cells(sp *Space, dst []uint64) []uint64 {
	cur := r.Lo.Clone()
	for {
		dst = append(dst, sp.Ravel(cur))
		d := len(cur) - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= r.Hi[d] {
				break
			}
			cur[d] = r.Lo[d]
			d--
		}
		if d < 0 {
			return dst
		}
	}
}

// BoundingBox returns the smallest rectangle covering the given linear
// indices within the space. It returns ok=false for an empty input.
func BoundingBox(sp *Space, cells []uint64) (Rect, bool) {
	if len(cells) == 0 {
		return Rect{}, false
	}
	lo := sp.Unravel(cells[0])
	hi := lo.Clone()
	tmp := make(Coord, sp.Rank())
	for _, idx := range cells[1:] {
		sp.UnravelInto(idx, tmp)
		for d := range tmp {
			if tmp[d] < lo[d] {
				lo[d] = tmp[d]
			}
			if tmp[d] > hi[d] {
				hi[d] = tmp[d]
			}
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// Neighborhood appends the linear indices of all cells within Chebyshev
// distance radius of center (clipped to the space bounds) to dst and
// returns the extended slice. With radius 0 it appends only the center.
// This is the access pattern of local image operators such as convolution
// and the paper's cosmic-ray detector.
func Neighborhood(sp *Space, center Coord, radius int, dst []uint64) []uint64 {
	r := Rect{Lo: center.Clone(), Hi: center.Clone()}
	for d := range r.Lo {
		r.Lo[d] -= radius
		r.Hi[d] += radius
	}
	clipped, ok := r.Clip(sp.Shape())
	if !ok {
		return dst
	}
	return clipped.Cells(sp, dst)
}

// SortCells sorts a slice of linear indices in ascending order and removes
// duplicates in place, returning the shortened slice.
func SortCells(cells []uint64) []uint64 {
	if len(cells) < 2 {
		return cells
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	out := cells[:1]
	for _, v := range cells[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// UnionSorted merges two sorted, deduplicated index slices into a new
// sorted, deduplicated slice.
func UnionSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IntersectSorted returns the intersection of two sorted, deduplicated
// index slices as a new sorted slice.
func IntersectSorted(a, b []uint64) []uint64 {
	var out []uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ContainsSorted reports whether a sorted index slice contains v.
func ContainsSorted(cells []uint64, v uint64) bool {
	i := sort.Search(len(cells), func(i int) bool { return cells[i] >= v })
	return i < len(cells) && cells[i] == v
}
