package microbench

import (
	"context"
	"testing"

	"subzero/internal/obs"
	"subzero/internal/trace"
)

// benchConfig is the lookup benchmark workload: the paper's 1000×1000
// array at 10% coverage with a representative fanin/fanout, queried with
// QueryCellCount cells per operation.
func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Fanin, cfg.Fanout = 25, 4
	return cfg
}

func benchLookup(b *testing.B, strategy string, forward bool) {
	f, err := NewFixture(context.Background(), benchConfig(), strategy, "")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		if forward {
			n, err = f.Forward(context.Background())
		} else {
			n, err = f.Backward(context.Background())
		}
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty lookup result")
		}
	}
}

func BenchmarkBackwardLookup(b *testing.B) {
	for _, strat := range []string{"<-FullOne", "<-FullMany", "<-PayOne"} {
		b.Run(strat, func(b *testing.B) { benchLookup(b, strat, false) })
	}
}

func BenchmarkForwardLookup(b *testing.B) {
	for _, strat := range []string{"->FullOne", "<-FullOne"} {
		b.Run(strat, func(b *testing.B) { benchLookup(b, strat, true) })
	}
}

// BenchmarkBackwardLookupObs measures the cost of full observation
// (kvstore wrapping, query spans, latency histograms) against the
// unobserved baseline on the same workload. Compare the off/on pairs with
// benchstat; the obs hot path is designed to stay within ~2%.
// BenchmarkBackwardLookupTraced measures end-to-end tracing cost on the
// BenchmarkBackwardLookup workload: "off" runs with no tracer (the
// sampled-off path, which must stay allocation-free through the engine),
// "on" grows a full span tree per query under an always-sample tracer.
// The off mode is the companion to BenchmarkBackwardLookup/<-FullOne —
// benchstat the pair to confirm tracing costs nothing when idle.
func BenchmarkBackwardLookupTraced(b *testing.B) {
	for _, mode := range []struct {
		name   string
		tracer *trace.Tracer
	}{
		{"off", nil},
		{"on", trace.New(trace.Config{Sample: 1})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			f, err := NewFixture(context.Background(), benchConfig(), "<-FullOne", "")
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := mode.tracer.StartRequest("bench backward", "")
				n, err := f.Backward(trace.ContextWithSpan(context.Background(), sp))
				sp.End()
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("empty lookup result")
				}
			}
		})
	}
}

func BenchmarkBackwardLookupObs(b *testing.B) {
	for _, mode := range []struct {
		name string
		set  *obs.Set
	}{
		{"off", nil},
		{"on", obs.NewSet()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			f, err := NewFixtureObs(context.Background(), benchConfig(), "<-FullOne", "", mode.set)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := f.Backward(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("empty lookup result")
				}
			}
		})
	}
}
