package microbench

import (
	"context"
	"testing"

	"subzero/internal/lineage"
)

// testConfig keeps tests fast: 100x100 array.
func testConfig(fanin, fanout int) Config {
	return Config{Rows: 100, Cols: 100, Coverage: 0.10, Fanin: fanin, Fanout: fanout, Seed: 5}
}

func TestDeterministicPairGeneration(t *testing.T) {
	a, err := Run(context.Background(), testConfig(4, 2), "<-FullOne", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), testConfig(4, 2), "<-FullOne", "")
	if err != nil {
		t.Fatal(err)
	}
	if a.LineageBytes != b.LineageBytes || a.BackwardCells != b.BackwardCells {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// Every strategy must return identical query answers; black-box tracing
// is the ground truth.
func TestMicrobenchStrategyEquivalence(t *testing.T) {
	for _, cfg := range []Config{testConfig(1, 1), testConfig(8, 4), testConfig(16, 1)} {
		var wantB, wantF int
		for i, name := range StrategyNames {
			res, err := Run(context.Background(), cfg, name, "")
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.BackwardCells == 0 || res.ForwardCells == 0 {
				t.Fatalf("%s: empty query results", name)
			}
			if i == 0 {
				wantB, wantF = res.BackwardCells, res.ForwardCells
				continue
			}
			if res.BackwardCells != wantB || res.ForwardCells != wantF {
				t.Fatalf("%s fanin=%d fanout=%d: got (%d,%d) cells, want (%d,%d)",
					name, cfg.Fanin, cfg.Fanout, res.BackwardCells, res.ForwardCells, wantB, wantF)
			}
		}
	}
}

func TestBlackBoxStoresNothing(t *testing.T) {
	res, err := Run(context.Background(), testConfig(4, 4), "BlackBox", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.LineageBytes != 0 {
		t.Fatalf("black-box stored %d bytes", res.LineageBytes)
	}
}

// Payload storage must be (nearly) independent of fanin, unlike full
// lineage (paper §VIII-C: "payload lineage has a much lower overhead than
// the full lineage approaches and is independent of the fanin" — here the
// payload grows 4 bytes/fanin, dwarfed by full lineage's per-cell cost).
func TestPayloadCheaperThanFullAtHighFanin(t *testing.T) {
	pay, err := Run(context.Background(), testConfig(50, 1), "<-PayOne", "")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), testConfig(50, 1), "<-FullOne", "")
	if err != nil {
		t.Fatal(err)
	}
	if pay.LineageBytes >= full.LineageBytes {
		t.Fatalf("payload (%d B) not cheaper than full (%d B) at fanin 50",
			pay.LineageBytes, full.LineageBytes)
	}
}

// Forward-optimized FullOne creates one entry per distinct input cell, so
// its size must grow with fanin relative to the backward-optimized store
// at fanout 1 (paper: "when the fanin increases it can require up to
// fanin× more hash entries").
func TestForwardOptimizedEntryBlowup(t *testing.T) {
	fwd, err := Run(context.Background(), testConfig(30, 1), "->FullOne", "")
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := Run(context.Background(), testConfig(30, 1), "<-FullOne", "")
	if err != nil {
		t.Fatal(err)
	}
	if fwd.LineageBytes <= bwd.LineageBytes {
		t.Fatalf("forward store (%d B) not larger than backward (%d B) at fanin 30 fanout 1",
			fwd.LineageBytes, bwd.LineageBytes)
	}
}

func TestUnknownStrategy(t *testing.T) {
	if _, err := Run(context.Background(), testConfig(1, 1), "nope", ""); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestMapPCellsRoundTrip(t *testing.T) {
	op := NewSyntheticOp(testConfig(3, 1))
	cells := []uint64{5, 900, 1 << 20}
	got := op.MapP(nil, 0, encodeCellsPayload(cells), 0, nil)
	if len(got) != 3 || got[0] != 5 || got[1] != 900 || got[2] != 1<<20 {
		t.Fatalf("MapP round trip: %v", got)
	}
}

// The literal fanin×4 payload form (the paper's stated size) must also
// answer queries identically — it is the ablation configuration.
func TestPayloadCellsStyleEquivalence(t *testing.T) {
	cfg := testConfig(8, 4)
	base, err := Run(context.Background(), cfg, "BlackBox", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg.PayloadCells = true
	res, err := Run(context.Background(), cfg, "<-PayOne", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.BackwardCells != base.BackwardCells || res.ForwardCells != base.ForwardCells {
		t.Fatalf("cells-style payload answers differ: (%d,%d) vs (%d,%d)",
			res.BackwardCells, res.ForwardCells, base.BackwardCells, base.ForwardCells)
	}
}

// The compact payload must be fanin-independent in size: lineage bytes at
// fanin 50 stay close to fanin 1 (within framing noise).
func TestCompactPayloadFaninIndependent(t *testing.T) {
	small, err := Run(context.Background(), testConfig(1, 1), "<-PayOne", "")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(context.Background(), testConfig(50, 1), "<-PayOne", "")
	if err != nil {
		t.Fatal(err)
	}
	if big.LineageBytes > small.LineageBytes*3/2 {
		t.Fatalf("compact payload grew with fanin: %d -> %d", small.LineageBytes, big.LineageBytes)
	}
}

func TestSupportedModes(t *testing.T) {
	op := NewSyntheticOp(testConfig(1, 1))
	modes := op.SupportedModes()
	hasFull, hasPay := false, false
	for _, m := range modes {
		if m == lineage.Full {
			hasFull = true
		}
		if m == lineage.Pay {
			hasPay = true
		}
	}
	if !hasFull || !hasPay {
		t.Fatalf("modes=%v", modes)
	}
}
