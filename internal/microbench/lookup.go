package microbench

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/obs"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// Fixture is a warmed single-operator run for repeated lookup
// measurement: the synthetic workflow has executed, lineage is flushed,
// and the same QueryCellCount-cell query can be executed over and over
// against the materialized store. The lookup benchmarks and the
// subzero-bench "lookup" figure both drive it.
type Fixture struct {
	Strategy string
	Cfg      Config

	run   *workflow.Run
	qe    *query.Executor
	cells []uint64
	mgr   *kvstore.Manager
}

// NewFixture executes the synthetic workflow under the strategy and
// returns the warmed fixture. An empty storageRoot keeps lineage in
// memory, isolating lookup CPU cost from I/O.
func NewFixture(ctx context.Context, cfg Config, strategy, storageRoot string) (*Fixture, error) {
	return NewFixtureObs(ctx, cfg, strategy, storageRoot, nil)
}

// NewFixtureObs is NewFixture with a metric set threaded through every
// layer (kvstore, ingest, query executor), for measuring observation
// overhead and for the subzero-bench "obs" figure. A nil set leaves the
// fixture unobserved.
func NewFixtureObs(ctx context.Context, cfg Config, strategy, storageRoot string, set *obs.Set) (*Fixture, error) {
	plan, err := planFor(strategy)
	if err != nil {
		return nil, err
	}
	spec := workflow.NewSpec("microbench-lookup")
	spec.Add(NodeID, NewSyntheticOp(cfg), workflow.FromExternal("input"))
	input, err := array.New("input", grid.Shape{cfg.Rows, cfg.Cols})
	if err != nil {
		return nil, err
	}
	root := storageRoot
	if root != "" {
		root = filepath.Join(storageRoot, fmt.Sprintf("lookup-%s-%d-%d", sanitize(strategy), cfg.Fanin, cfg.Fanout))
	}
	mgr, err := kvstore.NewManager(root)
	if err != nil {
		return nil, err
	}
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	if set != nil {
		mgr.SetMetrics(&set.KV) // before the first Open so stores get wrapped
		exec.SetObs(&set.Ingest)
	}
	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{"input": input})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	size := int64(cfg.Rows) * int64(cfg.Cols)
	cells := make([]uint64, QueryCellCount)
	for i := range cells {
		cells[i] = uint64(rng.Int63n(size))
	}
	qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
	if set != nil {
		qe.WithObs(&set.Query)
	}
	f := &Fixture{
		Strategy: strategy,
		Cfg:      cfg,
		run:      run,
		qe:       qe,
		cells:    cells,
		mgr:      mgr,
	}
	// Warm both directions once so store flushes, spatial indexes, and
	// record caches are hot before measurement starts.
	if _, err := f.Backward(ctx); err != nil {
		mgr.Close()
		return nil, err
	}
	if _, err := f.Forward(ctx); err != nil {
		mgr.Close()
		return nil, err
	}
	return f, nil
}

// Backward executes one backward query of QueryCellCount cells and
// returns the result cardinality.
func (f *Fixture) Backward(ctx context.Context) (int, error) {
	res, err := f.qe.Execute(ctx, query.Query{
		Direction: query.Backward, Cells: f.cells,
		Path: []query.Step{{Node: NodeID}},
	})
	if err != nil {
		return 0, err
	}
	return int(res.Bitmap.Count()), nil
}

// Forward executes one forward query of QueryCellCount cells and returns
// the result cardinality.
func (f *Fixture) Forward(ctx context.Context) (int, error) {
	res, err := f.qe.Execute(ctx, query.Query{
		Direction: query.Forward, Cells: f.cells,
		Path: []query.Step{{Node: NodeID}},
	})
	if err != nil {
		return 0, err
	}
	return int(res.Bitmap.Count()), nil
}

// Close releases the fixture's stores.
func (f *Fixture) Close() { f.mgr.Close() }
