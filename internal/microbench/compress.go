package microbench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
)

// Compression ablation for the v3 container record codec: the same
// synthetic region pairs are written under the v2 span codec and the v3
// tiled container codec, isolating the record format from everything
// else (strategy, index, kvstore). Workloads span the cell-set shapes
// real operators produce:
//
//	strided-mask   every-other-cell masks (downsampling, channel
//	               deinterleave) — the v2 worst case: one ~2-byte run
//	               per surviving cell vs 1 bit in a bitmap container
//	dense-block    contiguous rectangular regions (convolution windows,
//	               astronomy co-adds) — run and full containers
//	scatter        ~40% random scatter in local windows (thresholded
//	               masks) — bitmap containers
//	sparse-point   small scattered fanin (point lookups, genomics
//	               row ops) — the sparse-direct form; v3 must hold
//	               parity with v2 here, not win
//
// CompressWorkloads lists them in report order.
var CompressWorkloads = []string{"strided-mask", "dense-block", "scatter", "sparse-point"}

// CompressStrategies are the encodings the ablation writes under.
var CompressStrategies = []lineage.Strategy{lineage.StratFullOne, lineage.StratFullMany}

// CompressResult is one (workload, strategy, codec) measurement.
type CompressResult struct {
	Workload string
	Strategy lineage.Strategy
	Codec    int
	Pairs    int64
	// LineageBytes is the store's total footprint: pair records in the
	// codec under test, plus the strategy's index (hash cell entries or
	// R-tree items), which is codec-independent. Many encodings keep one
	// small index item per pair, so their ratio tracks the record codec;
	// One encodings carry per-cell hash entries in both columns.
	LineageBytes int64
	// LogicalBytes is the uncompressed volume (8 bytes per stored cell
	// index plus payload), the numerator of the compression ratio.
	LogicalBytes int64
	EncodeTime   time.Duration
}

// BytesPerPair is the stored lineage bytes per region pair.
func (r *CompressResult) BytesPerPair() float64 {
	if r.Pairs == 0 {
		return 0
	}
	return float64(r.LineageBytes) / float64(r.Pairs)
}

// EncodePerPair is the synchronous write-path time per region pair.
func (r *CompressResult) EncodePerPair() time.Duration {
	if r.Pairs == 0 {
		return 0
	}
	return r.EncodeTime / time.Duration(r.Pairs)
}

// compressSpace is the array both sides of every compression workload
// live in: 256 rows of 4096 cells, so one row is four container tiles.
var compressSpace = grid.NewSpace(grid.Shape{256, 4096})

// compressPairs generates the deterministic pair set for one workload at
// the given scale (pair count multiplier, quick≈1).
func compressPairs(workload string, scale int) ([]lineage.RegionPair, error) {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(19))
	rowCells := uint64(4096)
	nRows := uint64(256)
	var pairs []lineage.RegionPair
	addPair := func(out, in []uint64) {
		pairs = append(pairs, lineage.RegionPair{Out: out, Ins: [][]uint64{in}})
	}
	switch workload {
	case "strided-mask":
		// Each pair keeps every other cell of one row (4 tiles wide).
		for p := 0; p < 64*scale; p++ {
			row := uint64(rng.Intn(int(nRows))) * rowCells
			phase := uint64(p & 1)
			var out, in []uint64
			for c := row + phase; c < row+rowCells; c += 2 {
				out = append(out, c)
				in = append(in, c)
			}
			addPair(out, in)
		}
	case "dense-block":
		// Contiguous spans of 1.5 tiles starting mid-tile.
		for p := 0; p < 64*scale; p++ {
			base := uint64(rng.Intn(int(nRows)))*rowCells + uint64(rng.Intn(2048))
			var out, in []uint64
			for c := base; c < base+1536; c++ {
				out = append(out, c)
				in = append(in, c)
			}
			addPair(out, in)
		}
	case "scatter":
		// ~40% random scatter across one row.
		for p := 0; p < 64*scale; p++ {
			row := uint64(rng.Intn(int(nRows))) * rowCells
			var out, in []uint64
			for c := row; c < row+rowCells; c++ {
				if rng.Intn(100) < 40 {
					out = append(out, c)
				}
				if rng.Intn(100) < 40 {
					in = append(in, c)
				}
			}
			if len(out) == 0 || len(in) == 0 {
				continue
			}
			addPair(out, in)
		}
	case "sparse-point":
		// Singleton outputs with 3-cell scattered fanin.
		size := int64(compressSpace.Size())
		for p := 0; p < 4096*scale; p++ {
			out := []uint64{uint64(rng.Int63n(size))}
			base := uint64(rng.Int63n(size - 4096))
			offs := map[uint64]struct{}{}
			for len(offs) < 3 {
				offs[uint64(rng.Int63n(4096))] = struct{}{}
			}
			in := make([]uint64, 0, 3)
			for o := range offs {
				in = append(in, base+o)
			}
			sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
			addPair(out, in)
		}
	default:
		return nil, fmt.Errorf("microbench: unknown compression workload %q", workload)
	}
	return pairs, nil
}

// CompressRun writes one workload's pairs into a fresh in-memory store
// under the given strategy and codec and measures the synchronous
// write path.
func CompressRun(workload string, strat lineage.Strategy, codec, scale int) (*CompressResult, error) {
	pairs, err := compressPairs(workload, scale)
	if err != nil {
		return nil, err
	}
	st, err := lineage.OpenStore(kvstore.NewMem(), strat, compressSpace, []*grid.Space{compressSpace})
	if err != nil {
		return nil, err
	}
	if err := st.SetCodec(codec); err != nil {
		return nil, err
	}
	start := time.Now()
	// Batches of the ingest pipeline's typical size, so the encode cost
	// is measured under the same group-commit pattern shard workers use.
	const batch = 256
	for i := 0; i < len(pairs); i += batch {
		j := i + batch
		if j > len(pairs) {
			j = len(pairs)
		}
		if err := st.WritePairs(pairs[i:j]); err != nil {
			return nil, err
		}
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	encode := time.Since(start)
	return &CompressResult{
		Workload:     workload,
		Strategy:     strat,
		Codec:        codec,
		Pairs:        int64(st.Stats().Pairs),
		LineageBytes: st.SizeBytes(),
		LogicalBytes: st.LogicalBytes(),
		EncodeTime:   encode,
	}, nil
}

// CompressVerify cross-checks that a v2 and a v3 store over the same
// workload answer an identical backward query workload — the in-situ
// container probe path must be answer-equivalent to the materializing
// v2 path.
func CompressVerify(workload string, strat lineage.Strategy, scale int) error {
	pairs, err := compressPairs(workload, scale)
	if err != nil {
		return err
	}
	open := func(codec int) (*lineage.Store, error) {
		st, err := lineage.OpenStore(kvstore.NewMem(), strat, compressSpace, []*grid.Space{compressSpace})
		if err != nil {
			return nil, err
		}
		if err := st.SetCodec(codec); err != nil {
			return nil, err
		}
		if err := st.WritePairs(pairs); err != nil {
			return nil, err
		}
		return st, st.Flush()
	}
	v2, err := open(lineage.CodecV2)
	if err != nil {
		return err
	}
	v3, err := open(lineage.CodecV3)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(29))
	size := int64(compressSpace.Size())
	for trial := 0; trial < 5; trial++ {
		q := bitmap.New(compressSpace)
		for i := 0; i < 500; i++ {
			q.Set(uint64(rng.Int63n(size)))
		}
		a, b := bitmap.New(compressSpace), bitmap.New(compressSpace)
		if err := v2.Backward(q, a, 0, nil, nil, nil); err != nil {
			return err
		}
		if err := v3.Backward(q, b, 0, nil, nil, nil); err != nil {
			return err
		}
		if a.Count() != b.Count() {
			return fmt.Errorf("microbench: %s/%s: v2 and v3 backward answers differ (%d vs %d cells)",
				workload, strat, a.Count(), b.Count())
		}
		same := true
		a.Iterate(func(idx uint64) bool {
			same = b.Get(idx)
			return same
		})
		if !same {
			return fmt.Errorf("microbench: %s/%s: v2 and v3 backward answers differ", workload, strat)
		}
	}
	return nil
}
