package microbench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
)

// The write-path microbenchmarks measure lineage capture cost through the
// same Writer the executor uses: BenchmarkIngestSerial is the synchronous
// baseline, BenchmarkIngestSharded* run the asynchronous pipeline.
// b.ReportMetric publishes the part the operator thread paid, which is
// the quantity the sharded pipeline exists to shrink.

const (
	ingestSide     = 256
	ingestPairs    = 4096
	ingestFanin    = 8
	ingestFanout   = 4
	ingestBlockLen = 64
)

type ingestFixture struct {
	outSpace *grid.Space
	inSpaces []*grid.Space
	pairs    []lineage.RegionPair
}

func newIngestFixture() *ingestFixture {
	space := grid.NewSpace(grid.Shape{ingestSide, ingestSide})
	rng := rand.New(rand.NewSource(77))
	size := int64(space.Size())
	pairs := make([]lineage.RegionPair, ingestPairs)
	for i := range pairs {
		rp := lineage.RegionPair{Ins: make([][]uint64, 1)}
		base := rng.Int63n(size - ingestFanout)
		for j := 0; j < ingestFanout; j++ {
			rp.Out = append(rp.Out, uint64(base)+uint64(j))
		}
		inBase := rng.Int63n(size - ingestFanin)
		for j := 0; j < ingestFanin; j++ {
			rp.Ins[0] = append(rp.Ins[0], uint64(inBase)+uint64(j))
		}
		rp.Normalize()
		pairs[i] = rp
	}
	return &ingestFixture{outSpace: space, inSpaces: []*grid.Space{space}, pairs: pairs}
}

var ingestFix *ingestFixture

func benchmarkIngest(b *testing.B, strat lineage.Strategy, shards int) {
	if ingestFix == nil {
		ingestFix = newIngestFixture()
	}
	fix := ingestFix
	b.ReportAllocs()
	var opNS, encodeNS float64
	for n := 0; n < b.N; n++ {
		st, err := lineage.OpenStore(kvstore.NewMem(), strat, fix.outSpace, fix.inSpaces)
		if err != nil {
			b.Fatal(err)
		}
		var coord *lineage.Coordinator
		w := lineage.NewWriter(fix.outSpace, fix.inSpaces, []*lineage.Store{st}, nil, nil)
		if shards > 1 {
			coord = lineage.NewCoordinator(context.Background(), lineage.IngestConfig{Shards: shards}, nil)
			w.UseIngest(coord)
		}
		for i := range fix.pairs {
			if err := w.LWrite(fix.pairs[i].Out, fix.pairs[i].Ins...); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if coord != nil {
			if err := coord.Close(); err != nil {
				b.Fatal(err)
			}
		}
		ss := st.Stats()
		opNS += float64(ss.OperatorTime())
		encodeNS += float64(ss.WriteTime)
	}
	pairs := float64(b.N * ingestPairs)
	b.ReportMetric(opNS/pairs, "op-ns/pair")
	b.ReportMetric(encodeNS/pairs, "encode-ns/pair")
}

func BenchmarkIngestSerial(b *testing.B) {
	for _, strat := range []lineage.Strategy{lineage.StratFullOne, lineage.StratFullMany} {
		b.Run(strat.ID(), func(b *testing.B) { benchmarkIngest(b, strat, 0) })
	}
}

func BenchmarkIngestSharded(b *testing.B) {
	for _, shards := range []int{2, 4} {
		for _, strat := range []lineage.Strategy{lineage.StratFullOne, lineage.StratFullMany} {
			b.Run(fmt.Sprintf("%s/shards=%d", strat.ID(), shards), func(b *testing.B) {
				benchmarkIngest(b, strat, shards)
			})
		}
	}
}

// BenchmarkIngestEnqueue isolates the enqueue hot path the operator
// thread pays per lwrite block under the sharded pipeline.
func BenchmarkIngestEnqueue(b *testing.B) {
	if ingestFix == nil {
		ingestFix = newIngestFixture()
	}
	fix := ingestFix
	st, err := lineage.OpenStore(kvstore.NewMem(), lineage.StratFullOne, fix.outSpace, fix.inSpaces)
	if err != nil {
		b.Fatal(err)
	}
	coord := lineage.NewCoordinator(context.Background(), lineage.IngestConfig{Shards: 4, Depth: 64}, nil)
	defer coord.Close()
	stores := []*lineage.Store{st}
	block := make([]lineage.RegionPair, ingestBlockLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		copy(block, fix.pairs[(n*ingestBlockLen)%(ingestPairs-ingestBlockLen):])
		if err := coord.Enqueue(stores, block); err != nil {
			b.Fatal(err)
		}
		block = make([]lineage.RegionPair, ingestBlockLen)
		if n%32 == 31 {
			if err := coord.Barrier(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := coord.Barrier(); err != nil {
		b.Fatal(err)
	}
}
