package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"subzero"
	"subzero/client"
	"subzero/internal/genomics"
	"subzero/internal/obs"
	"subzero/internal/server"
)

// callerTraceparent is a fixed W3C traceparent a remote caller might send:
// sampled flag set, so the server must trace regardless of its sample rate.
const (
	callerTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	callerSpanID      = "00f067aa0ba902b7"
	callerTraceparent = "00-" + callerTraceID + "-" + callerSpanID + "-01"
)

// newTracedService boots a System with asynchronous lineage ingest (so
// enqueue/drain spans appear) behind an httptest server.
func newTracedService(t *testing.T) (*subzero.System, *client.Client, string) {
	t.Helper()
	sys, err := subzero.NewSystem(subzero.WithParallelism(4), subzero.WithIngest(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := server.New(server.Config{System: sys, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return sys, client.New(ts.URL), ts.URL
}

// firstBackwardQuery picks one backward query from the genomics workload
// registered against the run.
func firstBackwardQuery(t *testing.T, sys *subzero.System, runID string) subzero.Query {
	t.Helper()
	run, err := sys.Run(runID)
	if err != nil {
		t.Fatal(err)
	}
	qmap, err := genomics.Queries(run)
	if err != nil {
		t.Fatal(err)
	}
	for _, qn := range genomics.QueryNames {
		if q, ok := qmap[qn]; ok && q.Direction == subzero.Backward {
			return q
		}
	}
	t.Fatal("genomics workload has no backward query")
	return subzero.Query{}
}

// collectSpans flattens a wire span tree, checking parent links along the
// way: every child's Parent field must name its enclosing span.
func collectSpans(t *testing.T, parent string, spans []*subzero.WireSpan, out map[string][]*subzero.WireSpan) {
	t.Helper()
	for _, sp := range spans {
		if parent != "" && sp.Parent != parent {
			t.Errorf("span %s (%s): parent = %q, want %q", sp.ID, sp.Name, sp.Parent, parent)
		}
		out[sp.Class] = append(out[sp.Class], sp)
		collectSpans(t, sp.ID, sp.Children, out)
	}
}

// TestTraceEndToEnd drives a workflow execution and a lineage query
// through the HTTP API with a client-supplied traceparent, then fetches
// the retained trace and asserts the span tree: HTTP roots parented by
// the caller's span, executor-step spans, kvstore probe spans, and ingest
// barrier spans, all under the propagated trace ID.
func TestTraceEndToEnd(t *testing.T) {
	ctx := client.WithTraceparent(context.Background(), callerTraceparent)
	sys, c, _ := newTracedService(t)

	info, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Plan: "PayBoth", Scale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	qmap, err := genomics.Queries(run)
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	for _, q := range qmap {
		if q.Direction != subzero.Backward {
			continue
		}
		if _, err := c.Query(ctx, info.ID, q, nil); err != nil {
			t.Fatal(err)
		}
		fired++
	}
	if fired == 0 {
		t.Fatal("genomics workload has no backward queries")
	}

	wt, err := c.Trace(ctx, callerTraceID)
	if err != nil {
		t.Fatal(err)
	}
	if wt.TraceID != callerTraceID {
		t.Fatalf("trace ID = %q, want propagated %q", wt.TraceID, callerTraceID)
	}
	if !wt.External {
		t.Error("trace not marked external despite remote traceparent")
	}
	if wt.Run != info.ID {
		t.Errorf("trace run = %q, want %q", wt.Run, info.ID)
	}
	if wt.Direction != "backward" {
		t.Errorf("trace direction = %q, want backward", wt.Direction)
	}
	// Execute + queries all joined one trace: every request root is a
	// distinct tree root parented by the caller's span.
	if want := 1 + fired; len(wt.Roots) != want {
		t.Fatalf("roots = %d, want %d (execute + %d queries)", len(wt.Roots), want, fired)
	}
	byClass := make(map[string][]*subzero.WireSpan)
	for _, root := range wt.Roots {
		if root.Parent != callerSpanID {
			t.Errorf("root %s (%s): parent = %q, want caller span %q", root.ID, root.Name, root.Parent, callerSpanID)
		}
		byClass[root.Class] = append(byClass[root.Class], root)
		collectSpans(t, root.ID, root.Children, byClass)
	}

	for _, class := range []string{
		obs.SpanHTTP, obs.SpanExecute, obs.SpanNode, obs.SpanQuery,
		obs.SpanKVProbe, obs.SpanIngestEnqueue, obs.SpanIngestDrain,
	} {
		if len(byClass[class]) == 0 {
			classes := make([]string, 0, len(byClass))
			for k := range byClass {
				classes = append(classes, k)
			}
			t.Fatalf("no span with class %q in trace; classes present: %v", class, classes)
		}
	}
	// Executor steps report their access path as a span class drawn from
	// the registered families.
	known := make(map[string]bool)
	for _, class := range obs.SpanClasses() {
		known[class] = true
	}
	steps := 0
	for class, spans := range byClass {
		if !known[class] {
			t.Errorf("span class %q is not a registered obs.SpanClass", class)
		}
		for _, sp := range spans {
			if strings.HasPrefix(sp.Name, "step ") {
				steps++
			}
		}
	}
	if steps == 0 {
		t.Error("no executor step spans in trace")
	}
	// The kvstore probes sit under steps that touched Pay stores.
	for _, probe := range byClass[obs.SpanKVProbe] {
		if probe.Attrs["keys"] == "" {
			t.Errorf("kvstore probe span %s has no keys attr", probe.ID)
		}
	}

	// The same trace appears in the listing and honors filters.
	sums, err := c.Traces(ctx, client.TraceListOptions{Run: info.ID, Direction: "backward", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		if s.TraceID == callerTraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s missing from filtered listing (%d entries)", callerTraceID, len(sums))
	}
}

// TestTraceEndpointErrors covers the malformed-ID and not-retained paths.
func TestTraceEndpointErrors(t *testing.T) {
	ctx := context.Background()
	_, c, _ := newTracedService(t)

	if _, err := c.Trace(ctx, "not-hex"); err == nil {
		t.Fatal("malformed trace ID accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("malformed trace ID: got %v, want 400", err)
	}
	if _, err := c.Trace(ctx, strings.Repeat("ab", 16)); !client.IsNotFound(err) {
		t.Fatalf("unknown trace ID: got %v, want 404", err)
	}
}

// TestTraceparentResponseHeader asserts the server answers every request
// with its own position in the trace: same trace ID, new span ID, sampled.
func TestTraceparentResponseHeader(t *testing.T) {
	_, _, base := newTracedService(t)

	req, err := http.NewRequest(http.MethodGet, base+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", callerTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := resp.Header.Get("Traceparent")
	parts := strings.Split(got, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[1] != callerTraceID || parts[3] != "01" {
		t.Fatalf("response traceparent = %q, want 00-%s-<new span>-01", got, callerTraceID)
	}
	if parts[2] == callerSpanID || len(parts[2]) != 16 {
		t.Fatalf("response span ID %q must be a fresh 16-hex ID, not the caller's", parts[2])
	}
}

// TestHealthzIngestQueueDepth asserts the health body carries the ingest
// queue-depth gauge after async-ingest work has flowed through.
func TestHealthzIngestQueueDepth(t *testing.T) {
	ctx := context.Background()
	_, c, _ := newTracedService(t)

	if _, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Plan: "PayBoth", Scale: 1,
	}); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health status %q", h.Status)
	}
	if h.IngestQueueDepth < 0 {
		t.Fatalf("ingest queue depth %d < 0", h.IngestQueueDepth)
	}
}

// TestMetricsOpenMetricsNegotiation: the OpenMetrics exposition (with
// exemplars and # EOF) is served only to scrapers that ask for it; the
// default 0.0.4 body never carries either.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	ctx := client.WithTraceparent(context.Background(), callerTraceparent)
	sys, c, base := newTracedService(t)

	info, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Plan: "PayBoth", Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := firstBackwardQuery(t, sys, info.ID)
	if _, err := c.Query(ctx, info.ID, q, nil); err != nil {
		t.Fatal(err)
	}

	fetch := func(accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob), resp.Header.Get("Content-Type")
	}

	om, omType := fetch("application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(omType, "application/openmetrics-text") {
		t.Fatalf("openmetrics content type = %q", omType)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("openmetrics body missing # EOF terminator")
	}
	if !strings.Contains(om, `# {trace_id="`+callerTraceID+`"}`) {
		t.Error("openmetrics body missing query-duration exemplar with propagated trace ID")
	}

	plain, plainType := fetch("")
	if !strings.HasPrefix(plainType, "text/plain") {
		t.Fatalf("plain content type = %q", plainType)
	}
	if strings.Contains(plain, "trace_id=") || strings.Contains(plain, "# EOF") {
		t.Error("0.0.4 exposition leaked OpenMetrics syntax")
	}
	// The 0.0.4 body must stay parseable by the shipped client parser.
	if _, err := client.ParseExposition(plain); err != nil {
		t.Fatalf("0.0.4 exposition unparseable: %v", err)
	}
	if _, err := client.ParseExposition(om); err != nil {
		t.Fatalf("openmetrics exposition unparseable: %v", err)
	}
}

// TestSlowQueryPinsTrace: a server with a zero-distance slow threshold
// marks every query's trace slow, so it lands in the always-keep ring and
// is listable with the slow filter.
func TestSlowQueryPinsTrace(t *testing.T) {
	sys, err := subzero.NewSystem(subzero.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.New(server.Config{System: sys, MaxInFlight: 8, SlowQuery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)

	ctx := client.WithTraceparent(context.Background(), callerTraceparent)
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Plan: "PayBoth", Scale: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := firstBackwardQuery(t, sys, info.ID)
	if _, err := c.Query(ctx, info.ID, q, nil); err != nil {
		t.Fatal(err)
	}
	sums, err := c.Traces(ctx, client.TraceListOptions{SlowOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sums {
		if s.TraceID == callerTraceID && s.Slow {
			found = true
		}
	}
	if !found {
		t.Fatalf("slow-pinned trace %s missing from slow listing (%d entries)", callerTraceID, len(sums))
	}
}
