package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"subzero"
	"subzero/client"
	"subzero/internal/genomics"
	"subzero/internal/server"
)

// sampleLineRE matches one Prometheus text-format sample:
// name, optional {labels}, one space, value.
var sampleLineRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$`)

// TestMetricsUnderQueryStorm scrapes /v1/metrics while concurrent clients
// hammer query-batch, asserting the exposition stays well-formed, counters
// only move forward, and the final totals reconcile with the work done.
// Run under -race this also shakes out unsynchronized metric updates.
func TestMetricsUnderQueryStorm(t *testing.T) {
	ctx := context.Background()
	sys, err := subzero.NewSystem(subzero.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.New(server.Config{System: sys, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)

	info, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Run(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	qmap, err := genomics.Queries(run)
	if err != nil {
		t.Fatal(err)
	}
	var queries []subzero.Query
	backward, forward := 0, 0
	for _, qn := range genomics.QueryNames {
		q := qmap[qn]
		queries = append(queries, q)
		if q.Direction == subzero.Forward {
			forward++
		} else {
			backward++
		}
	}

	base, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	baseBackward := base[`subzero_queries_total{direction="backward"}`]
	baseForward := base[`subzero_queries_total{direction="forward"}`]

	// Storm: query-batch clients racing a metrics scraper that checks
	// counter monotonicity on every scrape.
	const clients, rounds = 4, 3
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, clients+1)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				br, err := c.QueryBatch(ctx, info.ID, queries, nil)
				if err != nil {
					errs <- err
					return
				}
				if br.Report.Failed != 0 {
					errs <- &client.APIError{Status: 500, Message: strings.Join(br.Errors, "; ")}
					return
				}
			}
		}()
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		prev := map[string]float64{}
		for i := 0; i < 20; i++ {
			m, err := c.Metrics(ctx)
			if err != nil {
				errs <- err
				return
			}
			for key, val := range m {
				if !strings.Contains(key, "_total") && !strings.HasSuffix(key, "_count") {
					continue
				}
				if was, ok := prev[key]; ok && val < was {
					errs <- &client.APIError{Status: 0,
						Message: "counter went backwards: " + key}
					return
				}
				prev[key] = val
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-scrapeDone
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final totals reconcile with the queries actually executed.
	final, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantBackward := baseBackward + float64(clients*rounds*backward)
	wantForward := baseForward + float64(clients*rounds*forward)
	if got := final[`subzero_queries_total{direction="backward"}`]; got != wantBackward {
		t.Errorf("backward queries total = %v, want %v", got, wantBackward)
	}
	if got := final[`subzero_queries_total{direction="forward"}`]; got != wantForward {
		t.Errorf("forward queries total = %v, want %v", got, wantForward)
	}

	// Histogram sum must be positive and bounded by aggregate busy time:
	// queries run concurrently on `clients` connections over a pool of 4
	// workers, so summed latency cannot exceed wall * (clients * pool).
	histSum := final[`subzero_query_duration_seconds_sum{direction="backward"}`] +
		final[`subzero_query_duration_seconds_sum{direction="forward"}`]
	if histSum <= 0 {
		t.Errorf("query duration histogram sum = %v, want > 0", histSum)
	}
	if limit := wall.Seconds() * float64(clients*4); histSum > limit {
		t.Errorf("query duration histogram sum %v exceeds busy-time bound %v", histSum, limit)
	}

	// HTTP layer counted the batch posts against the right endpoint.
	if got := final[`subzero_http_requests_total{endpoint="POST /v1/runs/{id}/query-batch"}`]; got < float64(clients*rounds) {
		t.Errorf("query-batch endpoint requests = %v, want >= %d", got, clients*rounds)
	}

	// Workload profile (the /v1/stats view of the same counters) agrees.
	profile, err := c.WorkloadProfile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if float64(profile.BackwardQueries) != wantBackward || float64(profile.ForwardQueries) != wantForward {
		t.Errorf("workload profile mix = %d/%d, want %v/%v",
			profile.BackwardQueries, profile.ForwardQueries, wantBackward, wantForward)
	}
	if len(profile.Classes) != 2 || profile.Classes[0].Class != "backward" || profile.Classes[1].Class != "forward" {
		t.Fatalf("workload profile classes: %+v", profile.Classes)
	}
	for _, class := range profile.Classes {
		if class.Count > 0 && (class.P50NS <= 0 || class.P99NS < class.P50NS) {
			t.Errorf("class %s quantiles implausible: %+v", class.Class, class)
		}
	}
	if len(profile.Operators) == 0 {
		t.Error("workload profile has no operator hit counts")
	}

	// The raw exposition parses line by line: HELP/TYPE precede samples,
	// every sample matches the text format, histogram _count is consistent.
	checkExposition(t, ts.URL)
}

// checkExposition fetches /v1/metrics raw and validates the text format
// structurally, the way a strict scraper would.
func checkExposition(t *testing.T, baseURL string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)

	helped := map[string]bool{}
	typed := map[string]bool{}
	sampled := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			if helped[name] {
				t.Errorf("line %d: duplicate HELP for %s", i+1, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name := fields[0]
			if !helped[name] {
				t.Errorf("line %d: TYPE for %s before HELP", i+1, name)
			}
			if k := fields[1]; k != "counter" && k != "gauge" && k != "histogram" {
				t.Errorf("line %d: unknown metric kind %q", i+1, k)
			}
			typed[name] = true
		case line == "":
			t.Errorf("line %d: blank line in exposition", i+1)
		default:
			if !sampleLineRE.MatchString(line) {
				t.Errorf("line %d: malformed sample: %q", i+1, line)
				continue
			}
			name := line[:strings.IndexAny(line, "{ ")]
			family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !typed[family] && !typed[name] {
				t.Errorf("line %d: sample %s before its TYPE", i+1, name)
			}
			sampled[name] = true
		}
	}
	for _, family := range []string{
		"subzero_queries_total",
		"subzero_query_duration_seconds",
		"subzero_query_steps_total",
		"subzero_ingest_batches_total",
		"subzero_kvstore_ops_total",
		"subzero_http_requests_total",
		"subzero_http_request_duration_seconds",
		"subzero_http_in_flight",
	} {
		if !typed[family] {
			t.Errorf("exposition missing family %s", family)
		}
	}
	// Every histogram must close with an +Inf bucket equal to _count.
	m, err := client.ParseExposition(text)
	if err != nil {
		t.Fatal(err)
	}
	for key, val := range m {
		idx := strings.Index(key, "_count")
		if idx < 0 {
			continue
		}
		family := key[:idx]
		rest := key[idx+len("_count"):] // "{labels}" or ""
		infKey := family + `_bucket`
		if rest == "" {
			infKey += `{le="+Inf"}`
		} else {
			infKey += rest[:len(rest)-1] + `,le="+Inf"}`
		}
		if inf, ok := m[infKey]; ok && inf != val {
			t.Errorf("%s = %v but +Inf bucket = %v", key, val, inf)
		}
	}
}
