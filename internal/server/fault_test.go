package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"subzero"
	"subzero/client"
	"subzero/internal/fault"
	"subzero/internal/server"
)

// TestHandlerPanicContainment: a panic inside a handler becomes a
// structured 500 carrying the request's trace ID, and the daemon keeps
// serving — one poisoned request never takes the process down.
func TestHandlerPanicContainment(t *testing.T) {
	defer fault.Reset()
	ctx := context.Background()
	_, _, c := newTestService(t, nil)

	if err := fault.Arm("server/handler", fault.Action{Kind: fault.KindPanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Health(ctx)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("panicked handler error = %v, want 500", err)
	}
	if !strings.Contains(apiErr.Message, "panic") {
		t.Fatalf("panic not surfaced in the error: %q", apiErr.Message)
	}
	if apiErr.TraceID == "" {
		t.Fatalf("500 from a panic must carry a trace ID for /v1/traces: %+v", apiErr)
	}

	// The panic was contained: the very next request is served normally.
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("daemon did not survive the panic: %v %+v", err, h)
	}
}

// TestHandlerErrorInjection: the same failpoint armed with an error
// action produces a plain traced 500 without touching the recover path.
func TestHandlerErrorInjection(t *testing.T) {
	defer fault.Reset()
	_, _, c := newTestService(t, nil)
	if err := fault.Arm("server/handler", fault.Action{Kind: fault.KindError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := c.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 || apiErr.TraceID == "" {
		t.Fatalf("injected handler error = %v, want traced 500", err)
	}
}

// TestRetryAfterDraining: shedding 503s during a timed drain advertise a
// Retry-After computed from the remaining drain window, not a constant.
func TestRetryAfterDraining(t *testing.T) {
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.New(server.Config{System: sys, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.DrainFor(42 * time.Second)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		bytes.NewReader([]byte(`{"workflow":"genomics"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("execute during drain = %d, want 503", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not numeric: %v", resp.Header.Get("Retry-After"), err)
	}
	// The drain window is 42s, so the advice must span (most of) its
	// remainder — a hard-coded "1" fails here.
	if secs < 30 || secs > 42 {
		t.Fatalf("Retry-After = %ds, want the ~42s drain remainder", secs)
	}
}

// TestServerQueryTimeout: a query that outlives the server-side deadline
// answers 504 — distinguishable from the 499 of a client hangup.
func TestServerQueryTimeout(t *testing.T) {
	op := &slowTraceOp{
		Meta:    subzero.Meta{OpName: "slow-trace", NIn: 1, Modes: []subzero.Mode{subzero.Full}},
		started: make(chan struct{}),
	}
	catalog := server.NewCatalog()
	if err := catalog.Register(&server.Workflow{
		Name: "gate",
		Build: func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error) {
			spec := subzero.NewSpec("gate")
			spec.Add("slow", op, subzero.FromExternal("src"))
			src, err := subzero.NewArray("src", subzero.Shape{8, 8})
			if err != nil {
				return nil, nil, err
			}
			return spec, map[string]*subzero.Array{"src": src}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.New(server.Config{
		System: sys, Catalog: catalog, MaxInFlight: 4,
		QueryTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)

	ctx := context.Background()
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "gate"})
	if err != nil {
		t.Fatal(err)
	}
	// The query's only access path is re-executing the slow operator in
	// tracing mode, which streams pairs until its context dies — here,
	// the server's own query deadline.
	_, err = c.Query(ctx, info.ID, subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "slow"}), nil)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("slow query error = %v, want 504", err)
	}
	if !strings.Contains(apiErr.Message, "query timeout") {
		t.Fatalf("504 lacks the timeout explanation: %q", apiErr.Message)
	}
}
