package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subzero"
	"subzero/client"
	"subzero/internal/genomics"
	"subzero/internal/server"
)

// newTestService boots a System behind an httptest server and returns the
// pieces plus a ready client.
func newTestService(t *testing.T, catalog *server.Catalog) (*subzero.System, *server.Server, *client.Client) {
	t.Helper()
	sys, err := subzero.NewSystem(subzero.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv, err := server.New(server.Config{System: sys, Catalog: catalog, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return sys, srv, client.New(ts.URL)
}

// TestServerEndToEndGenomics executes a genomics workflow through the
// client, fires parallel query batches, and asserts every result is
// byte-identical to in-process System.QueryBatch — the HTTP layer must be
// a transparent window onto the engine.
func TestServerEndToEndGenomics(t *testing.T) {
	ctx := context.Background()
	sys, _, c := newTestService(t, nil)

	// Catalog introspection round-trips.
	wfs, err := c.Workflows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, wf := range wfs {
		names[wf.Name] = true
	}
	if !names["genomics"] || !names["astronomy"] {
		t.Fatalf("catalog missing defaults: %v", names)
	}

	info, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Plan: "PayBoth", Scale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 14 || info.Workflow != "genomics" {
		t.Fatalf("run info: %+v", info)
	}

	// The run registered via HTTP is the same run the in-process System
	// holds; build the benchmark workload from it.
	run, err := sys.Run(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	qmap, err := genomics.Queries(run)
	if err != nil {
		t.Fatal(err)
	}
	var queries []subzero.Query
	for _, qn := range genomics.QueryNames {
		queries = append(queries, qmap[qn])
	}

	want, err := sys.QueryBatch(ctx, run, queries, subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Parallel clients hammer query-batch; every response must match the
	// in-process results cell for cell.
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var mismatches atomic.Int64
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			br, err := c.QueryBatch(ctx, info.ID, queries, nil)
			if err != nil {
				errs <- err
				return
			}
			if br.Report.Failed != 0 {
				errs <- &client.APIError{Status: 500, Message: strings.Join(br.Errors, "; ")}
				return
			}
			for i := range queries {
				got := br.Results[i].Cells
				wantCells := want.Results[i].Cells()
				if len(got) != len(wantCells) {
					mismatches.Add(1)
					return
				}
				for j := range got {
					if got[j] != wantCells[j] {
						mismatches.Add(1)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d clients saw results differing from in-process QueryBatch", n)
	}

	// Single query over HTTP matches too, including step diagnostics.
	res, err := c.Query(ctx, info.ID, queries[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != len(want.Results[0].Steps) {
		t.Fatalf("step count: %d != %d", len(res.Steps), len(want.Results[0].Steps))
	}

	// Optimizer over HTTP.
	rep, err := c.Optimize(ctx, info.ID, queries, subzero.Constraints{MaxDiskBytes: subzero.MB(20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "optimal" || len(rep.Plan) == 0 {
		t.Fatalf("optimize report: %+v", rep)
	}

	// Stats and lifecycle.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 1 || stats.LineageBytes <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	// The per-store inventory carries compressed vs logical footprints.
	storeStats, err := c.StoreStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(storeStats) == 0 {
		t.Fatal("stats carries no per-store inventory")
	}
	for _, ss := range storeStats {
		if ss.Run != info.ID || ss.Node == "" || ss.Strategy == "" {
			t.Fatalf("store stat: %+v", ss)
		}
		if ss.Codec != 3 || ss.StoredBytes <= 0 || ss.LogicalBytes <= 0 || ss.Ratio <= 0 {
			t.Fatalf("store stat footprint: %+v", ss)
		}
	}
	runs, err := c.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].ID != info.ID {
		t.Fatalf("runs: %+v", runs)
	}
	if err := c.DropRun(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, info.ID); !client.IsNotFound(err) {
		t.Fatalf("dropped run fetch: %v", err)
	}
	if err := c.DropRun(ctx, info.ID); !client.IsNotFound(err) {
		t.Fatalf("double drop: %v", err)
	}
}

// slowTraceOp passes data through untouched; during black-box tracing
// (any Run call after the first) it signals `started` and then emits
// region pairs until the streaming context check aborts it — giving the
// cancellation test a window that stays open exactly as long as the
// server-side context is alive.
type slowTraceOp struct {
	subzero.Meta
	calls   atomic.Int32
	started chan struct{}
	once    sync.Once
}

func (o *slowTraceOp) OutShape(in []subzero.Shape) (subzero.Shape, error) {
	return in[0].Clone(), nil
}

func (o *slowTraceOp) Run(rc *subzero.RunCtx, ins []*subzero.Array) (*subzero.Array, error) {
	tracing := o.calls.Add(1) > 1
	size := uint64(len(ins[0].Data()))
	if rc.NeedsPairs() {
		if tracing {
			o.once.Do(func() { close(o.started) })
			// Effectively unbounded: the ctx check every 1024 streamed
			// pairs is the only way out. Bounded far above any test
			// duration so a regression hangs the test visibly instead of
			// passing quietly.
			for i := uint64(0); i < 1<<40; i++ {
				if err := rc.LWrite([]uint64{i % size}, []uint64{i % size}); err != nil {
					return nil, err
				}
			}
		} else {
			for i := uint64(0); i < size; i++ {
				if err := rc.LWrite([]uint64{i}, []uint64{i}); err != nil {
					return nil, err
				}
			}
		}
	}
	return ins[0].Clone().WithName(o.OpName), nil
}

// TestClientDisconnectCancelsReexecution kills a client mid-query and
// asserts the server aborts the underlying operator re-execution via the
// wrapped ctx.Err() cancellation path (observable as the server's
// cancelled counter).
func TestClientDisconnectCancelsReexecution(t *testing.T) {
	op := &slowTraceOp{
		Meta:    subzero.Meta{OpName: "slow-trace", NIn: 1, Modes: []subzero.Mode{subzero.Full}},
		started: make(chan struct{}),
	}
	catalog := server.NewCatalog()
	if err := catalog.Register(&server.Workflow{
		Name: "gate",
		Build: func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error) {
			spec := subzero.NewSpec("gate")
			spec.Add("pre", subzero.UnaryOp("pre", func(x float64) float64 { return x + 1 }),
				subzero.FromExternal("src"))
			spec.Add("slow", op, subzero.FromNode("pre"))
			src, err := subzero.NewArray("src", subzero.Shape{8, 8})
			if err != nil {
				return nil, nil, err
			}
			return spec, map[string]*subzero.Array{"src": src}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, srv, c := newTestService(t, catalog)

	ctx := context.Background()
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "gate"})
	if err != nil {
		t.Fatal(err)
	}

	// Backward query whose first step must re-execute the slow operator
	// in tracing mode ("slow" stores nothing and has no mapping
	// functions, so black-box re-execution is the only access path).
	q := subzero.BackwardQuery([]uint64{5},
		subzero.Step{Node: "slow"}, subzero.Step{Node: "pre"})

	qctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(qctx, info.ID, q, nil)
		done <- err
	}()

	// Wait until the re-execution is provably in flight, then kill the
	// client. The transport closes the connection, the server's request
	// context dies, and the streamed-pair ctx check aborts the trace.
	select {
	case <-op.started:
	case <-time.After(30 * time.Second):
		t.Fatal("re-execution never started")
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("client query succeeded despite cancellation")
	}

	deadline := time.Now().Add(30 * time.Second)
	for srv.MetricsSnapshot().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the cancelled re-execution")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerRejectsOverCapacity pins the bounded in-flight cap: with a
// cap of 1 held open by a slow request, the next heavy request is shed
// with 503 and a structured error.
func TestServerRejectsOverCapacity(t *testing.T) {
	op := &slowTraceOp{
		Meta:    subzero.Meta{OpName: "slow-trace", NIn: 1, Modes: []subzero.Mode{subzero.Full}},
		started: make(chan struct{}),
	}
	catalog := server.NewCatalog()
	if err := catalog.Register(&server.Workflow{
		Name: "gate",
		Build: func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error) {
			spec := subzero.NewSpec("gate")
			spec.Add("slow", op, subzero.FromExternal("src"))
			src, err := subzero.NewArray("src", subzero.Shape{8, 8})
			if err != nil {
				return nil, nil, err
			}
			return spec, map[string]*subzero.Array{"src": src}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := server.New(server.Config{System: sys, Catalog: catalog, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := client.New(ts.URL)

	ctx := context.Background()
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "gate"})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the single slot with a query that blocks in re-execution.
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		c.Query(qctx, info.ID, subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "slow"}), nil)
	}()
	select {
	case <-op.started:
	case <-time.After(30 * time.Second):
		t.Fatal("occupying query never started")
	}

	_, err = c.Query(ctx, info.ID, subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "slow"}), nil)
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("over-capacity query error = %v, want 503", err)
	}
	if !strings.Contains(apiErr.Message, "capacity") {
		t.Fatalf("unstructured capacity error: %q", apiErr.Message)
	}
	// The shed response must carry computed Retry-After advice so clients
	// back off for a span derived from observed latency, not a constant.
	resp, err := http.Post(ts.URL+"/v1/runs/"+info.ID+"/query-batch", "application/json",
		strings.NewReader(`{"queries":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("raw over-capacity status = %d, want 503", resp.StatusCode)
	}
	if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
		t.Fatalf("Retry-After %q is not numeric: %v", resp.Header.Get("Retry-After"), err)
	}
	if srv.MetricsSnapshot().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	cancel()
	<-blocked
}

func asAPIError(err error, target **client.APIError) bool {
	if e, ok := err.(*client.APIError); ok {
		*target = e
		return true
	}
	return false
}

// TestServerDrainRejectsNewWork pins the graceful-shutdown contract:
// after Drain, health reports draining with 503 and heavy endpoints shed
// requests.
func TestServerDrainRejectsNewWork(t *testing.T) {
	ctx := context.Background()
	_, srv, c := newTestService(t, nil)

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}

	srv.Drain()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("draining health reported ok")
	}
	_, err = c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Scale: 1})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("execute during drain = %v, want 503", err)
	}
}

// TestServerErrorMapping pins the structured-error contract for the
// common failure classes.
func TestServerErrorMapping(t *testing.T) {
	ctx := context.Background()
	_, _, c := newTestService(t, nil)

	// Unknown workflow -> 404.
	_, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "nope"})
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown workflow: %v", err)
	}
	// Missing workflow name -> 400.
	_, err = c.Execute(ctx, subzero.WireExecuteRequest{})
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("empty request: %v", err)
	}
	// Absurd scale -> 400 (serving-side resource cap).
	_, err = c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Scale: 1e9})
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("oversized scale: %v", err)
	}
	// Fractional genomics scale -> 400 rather than silent truncation.
	_, err = c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Scale: 1.5})
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("fractional scale: %v", err)
	}
	// Bad plan name -> 400.
	_, err = c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Plan: "NoSuchPlan"})
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("bad plan: %v", err)
	}
	// Unknown run -> 404 on every run-scoped endpoint.
	if _, err = c.Run(ctx, "ghost"); !client.IsNotFound(err) {
		t.Fatalf("unknown run get: %v", err)
	}
	if _, err = c.Query(ctx, "ghost", subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "x"}), nil); !client.IsNotFound(err) {
		t.Fatalf("unknown run query: %v", err)
	}

	// Malformed queries -> 400 with the validator's message.
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{Workflow: "genomics", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(ctx, info.ID, subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "ghost-node"}), nil)
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 || !strings.Contains(apiErr.Message, "ghost-node") {
		t.Fatalf("invalid query path: %v", err)
	}
	// Empty batch -> 400.
	_, err = c.QueryBatch(ctx, info.ID, nil, nil)
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestServerExplicitPlan executes with a wire-form explicit plan and
// verifies the run reports it back.
func TestServerExplicitPlan(t *testing.T) {
	ctx := context.Background()
	sys, _, c := newTestService(t, nil)

	explicit := subzero.WirePlan{}
	for _, id := range []string{"tr-t", "tr-mean", "tr-center", "tr-std", "tr-norm",
		"te-t", "te-mean", "te-center", "te-std", "te-norm"} {
		explicit[id] = []string{"Map"}
	}
	explicit["F-model"] = []string{"FullOne", "FullOneFwd"}
	info, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics", Scale: 1, ExplicitPlan: explicit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Plan["F-model"]; len(got) != 2 || got[0] != "FullOne" || got[1] != "FullOneFwd" {
		t.Fatalf("explicit plan not applied: %v", info.Plan)
	}
	run, err := sys.Run(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stores := run.Stores("F-model"); len(stores) != 2 {
		t.Fatalf("F-model materialized %d stores, want 2", len(stores))
	}
}
