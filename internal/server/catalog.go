package server

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"subzero"
	"subzero/internal/astro"
	"subzero/internal/genomics"
)

// Workflow is one catalog entry: a named, server-side workflow
// definition. Operators are Go code, so workflows cannot travel over the
// wire; instead the service executes workflows it knows by name, with the
// request parameterizing the source generator (scale, seed) and the
// lineage plan.
type Workflow struct {
	Name        string
	Description string
	// Plans lists the named plan configurations; DefaultPlan is used when
	// a request names none.
	Plans       []string
	DefaultPlan string
	// Plan resolves a named plan configuration.
	Plan func(name string) (subzero.Plan, error)
	// Build constructs the spec and generated source arrays. scale <= 0
	// and seed == 0 select the workflow's defaults.
	Build func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error)
}

// Catalog is a concurrency-safe registry of named workflows.
type Catalog struct {
	mu   sync.RWMutex
	byID map[string]*Workflow
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byID: make(map[string]*Workflow)}
}

// Register adds a workflow; duplicate names error.
func (c *Catalog) Register(w *Workflow) error {
	if w == nil || w.Name == "" || w.Build == nil {
		return fmt.Errorf("server: catalog entry needs a name and a builder")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byID[w.Name]; dup {
		return fmt.Errorf("server: duplicate workflow %q", w.Name)
	}
	c.byID[w.Name] = w
	return nil
}

// Get returns a workflow by name.
func (c *Catalog) Get(name string) (*Workflow, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.byID[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown workflow %q", name)
	}
	return w, nil
}

// List returns the registered workflows sorted by name.
func (c *Catalog) List() []*Workflow {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Workflow, 0, len(c.byID))
	for _, w := range c.byID {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Serving-side scale caps: one HTTP request must not be able to commission
// an arbitrarily large workflow execution.
const (
	maxGenomicsScale = 500
	maxAstroScale    = 2.0
)

// DefaultCatalog registers the two paper benchmark workflows.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err) // static registrations; a failure is a programming error
		}
	}
	must(c.Register(&Workflow{
		Name:        "genomics",
		Description: "relapse-prediction workflow (paper §II-B): 10 mapping built-ins + 4 payload UDFs over a patient-feature matrix; scale is the patient replication factor",
		Plans:       genomics.StrategyNames,
		DefaultPlan: "PayBoth",
		Plan:        genomics.Plan,
		Build: func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error) {
			cfg := genomics.DefaultGenConfig()
			if scale > 0 {
				if scale > maxGenomicsScale {
					return nil, nil, fmt.Errorf("server: genomics scale %g exceeds cap %d", scale, maxGenomicsScale)
				}
				if scale != math.Trunc(scale) {
					return nil, nil, fmt.Errorf("server: genomics scale must be a whole patient-replication factor, got %g", scale)
				}
				cfg = cfg.Scaled(int(scale))
			} else {
				cfg = cfg.Scaled(2)
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			spec, err := genomics.NewSpec()
			if err != nil {
				return nil, nil, err
			}
			data, err := genomics.Generate(cfg)
			if err != nil {
				return nil, nil, err
			}
			return spec, map[string]*subzero.Array{"train": data.Train, "test": data.Test}, nil
		},
	}))
	must(c.Register(&Workflow{
		Name:        "astronomy",
		Description: "LSST image pipeline (paper §II-A): 22 mapping built-ins + 4 UDFs over two exposures; scale is the linear image scale (1.0 = 512x2000)",
		Plans:       astro.StrategyNames,
		DefaultPlan: "SubZero",
		Plan:        astro.Plan,
		Build: func(scale float64, seed int64) (*subzero.Spec, map[string]*subzero.Array, error) {
			cfg := astro.DefaultGenConfig()
			if scale > 0 {
				if scale > maxAstroScale {
					return nil, nil, fmt.Errorf("server: astronomy scale %g exceeds cap %g", scale, maxAstroScale)
				}
				cfg = cfg.Scaled(scale)
			} else {
				cfg = cfg.Scaled(0.125)
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			spec, err := astro.NewSpec()
			if err != nil {
				return nil, nil, err
			}
			sky, err := astro.Generate(cfg)
			if err != nil {
				return nil, nil, err
			}
			return spec, map[string]*subzero.Array{"img1": sky.Exposure1, "img2": sky.Exposure2}, nil
		},
	}))
	return c
}

// resolvePlan picks the plan for an execute request: an explicit wire plan
// wins, then a named configuration, then the workflow's default.
func resolvePlan(w *Workflow, req subzero.WireExecuteRequest) (subzero.Plan, error) {
	if len(req.ExplicitPlan) > 0 {
		plan, err := req.ExplicitPlan.Plan()
		if err != nil {
			return nil, fmt.Errorf("explicit plan: %w", err)
		}
		return plan, nil
	}
	name := req.Plan
	if name == "" {
		name = w.DefaultPlan
	}
	if name == "" || w.Plan == nil {
		return nil, nil // blackbox everywhere
	}
	return w.Plan(name)
}
