// Package server is SubZero's lineage-as-a-service layer: an HTTP/JSON
// API over the public System, exposing workflow execution, run lifecycle,
// lineage queries (single and batched over the System's worker pool),
// optimizer runs, and introspection.
//
// Design points, following the SMOKE argument that fine-grained lineage
// earns its keep only when external consumers get answers at interactive
// speed:
//
//   - Every request's context flows into the System's cancellation paths,
//     so a client that disconnects mid-query aborts operator re-execution
//     at the next boundary instead of burning the worker pool.
//   - A bounded in-flight cap sheds load with 503s instead of queueing
//     unboundedly; /v1/healthz flips to "draining" before shutdown so load
//     balancers stop routing while active queries drain.
//   - Errors are structured (subzero.WireError) and every request is
//     logged with its latency.
//
// Like the lineage it serves, the daemon's state is a recoverable cache:
// runs live in memory (and their lineage optionally in log files) and can
// always be re-created by re-executing the named workflow.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"subzero"
	"subzero/internal/fault"
	"subzero/internal/kvstore"
	"subzero/internal/obs"
	"subzero/internal/trace"
)

// fpHandler aborts a request at the top of its handler: armed with a
// panic action it exercises the containment middleware; armed with an
// error action it produces a plain 500. Tests arm it to prove one
// poisoned request never takes the daemon down.
var fpHandler = fault.Register("server/handler")

// DefaultMaxInFlight bounds concurrently served heavy requests when the
// config leaves MaxInFlight unset.
const DefaultMaxInFlight = 64

// maxBodyBytes caps request bodies; query batches are the largest
// legitimate payloads and stay far below this.
const maxBodyBytes = 32 << 20

// Config assembles a Server.
type Config struct {
	// System is the lineage system to serve. Required.
	System *subzero.System
	// Catalog names the workflows the service may execute; nil selects
	// DefaultCatalog.
	Catalog *Catalog
	// MaxInFlight bounds concurrently served heavy requests (execute,
	// query, query-batch, optimize, drop); excess requests are rejected
	// with 503. <= 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// Logger receives structured records (slow queries, write failures),
	// each carrying trace and run IDs when available; nil disables
	// logging entirely.
	Logger *slog.Logger
	// Obs is the metric set /v1/metrics exposes and the HTTP layer
	// records into. Nil selects the System's own set, so serving metrics
	// land in the same exposition as query/ingest/kvstore metrics.
	Obs *obs.Set
	// Tracer samples and retains request span trees served at /v1/traces.
	// Nil selects an always-sample tracer whose slow threshold follows
	// SlowQuery.
	Tracer *trace.Tracer
	// SlowQuery, when > 0, logs one structured line per lineage query
	// whose end-to-end latency reaches the threshold.
	SlowQuery time.Duration
	// QueryTimeout, when > 0, bounds each query and query-batch request:
	// the request context gets a server-imposed deadline, and a query
	// that exceeds it fails with 504 (distinguishable from a client
	// disconnect, which stays a cancellation).
	QueryTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose internals and cost CPU to capture.
	EnablePprof bool
}

// Metrics is a point-in-time snapshot of the serving counters.
type Metrics struct {
	Requests     int64 // requests accepted into a handler
	InFlight     int64 // heavy requests currently executing
	Rejected     int64 // requests shed by the in-flight cap or drain
	Cancelled    int64 // requests aborted by client disconnect/timeout
	ClientErrors int64 // 4xx responses
	ServerErrors int64 // 5xx responses
}

// Server is the HTTP handler for the lineage service.
type Server struct {
	sys          *subzero.System
	catalog      *Catalog
	mux          *http.ServeMux
	sem          chan struct{}
	logger       *slog.Logger
	obs          *obs.Set
	tracer       *trace.Tracer
	slowQuery    time.Duration
	queryTimeout time.Duration
	started      time.Time

	draining atomic.Bool
	// drainDeadline is the unix-nano instant the drain window closes
	// (0 when Drain was called without one); shed clients get a
	// Retry-After spanning the remainder.
	drainDeadline atomic.Int64

	requests     atomic.Int64
	inFlight     atomic.Int64
	rejected     atomic.Int64
	cancelled    atomic.Int64
	clientErrors atomic.Int64
	serverErrors atomic.Int64
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: config needs a System")
	}
	if cfg.Catalog == nil {
		cfg.Catalog = DefaultCatalog()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.Obs == nil {
		cfg.Obs = cfg.System.Observability()
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewSet()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.New(trace.Config{Sample: 1, Slow: cfg.SlowQuery})
	}
	s := &Server{
		sys:          cfg.System,
		catalog:      cfg.Catalog,
		mux:          http.NewServeMux(),
		sem:          make(chan struct{}, cfg.MaxInFlight),
		logger:       cfg.Logger,
		obs:          cfg.Obs,
		tracer:       cfg.Tracer,
		slowQuery:    cfg.SlowQuery,
		queryTimeout: cfg.QueryTimeout,
		started:      time.Now(),
	}
	s.handle("GET /v1/healthz", s.handleHealth)
	s.handle("GET /v1/metrics", s.handleMetrics)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/traces", s.handleListTraces)
	s.handle("GET /v1/traces/{id}", s.handleGetTrace)
	s.handle("GET /v1/workflows", s.handleWorkflows)
	s.handle("GET /v1/runs", s.handleListRuns)
	s.handle("GET /v1/runs/{id}", s.handleGetRun)
	s.handle("POST /v1/runs", s.limited(s.handleExecute))
	s.handle("DELETE /v1/runs/{id}", s.limited(s.handleDropRun))
	s.handle("POST /v1/runs/{id}/query", s.limited(s.handleQuery))
	s.handle("POST /v1/runs/{id}/query-batch", s.limited(s.handleQueryBatch))
	s.handle("POST /v1/runs/{id}/optimize", s.limited(s.handleOptimize))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
	return s, nil
}

// handle registers a route with per-endpoint request counting, latency
// histograms, and the root trace span. The metric series are resolved
// once here, so the untraced per-request cost is two atomic updates — no
// label lookups on the hot path.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	requests := s.obs.HTTP.Requests.With1(pattern)
	latency := s.obs.HTTP.Latency.With1(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Root span: an incoming W3C traceparent propagates the caller's
		// trace ID (and its sampled flag forces sampling); the response
		// echoes this request's own position in the tree so callers can
		// stitch. StartRequest returns nil when unsampled — every use
		// below is nil-safe and allocation-free.
		sp := s.tracer.StartRequest(pattern, r.Header.Get("Traceparent"))
		if sp != nil {
			sp.SetClass(obs.SpanHTTP)
			w.Header().Set("Traceparent", sp.Traceparent())
			r = r.WithContext(trace.ContextWithSpan(r.Context(), sp))
		}
		s.invoke(pattern, h, sp, w, r)
		if rec, ok := w.(*statusRecorder); ok && sp != nil {
			sp.SetAttrInt("status", int64(rec.status))
		}
		sp.End()
		requests.Inc()
		latency.ObserveSince(start)
	})
}

// invoke runs one handler with panic containment. A panicking handler —
// an operator bug reached through query re-execution, a poisoned
// request, an armed failpoint — must cost exactly one 500, not the
// daemon: the panic is logged with its stack and, when the response has
// not started, answered with a structured error carrying the trace ID.
// A response already underway is left alone (the status line is gone;
// the client sees a truncated body and the connection is reused or
// closed by net/http as appropriate).
func (s *Server) invoke(pattern string, h http.HandlerFunc, sp *trace.Span, w http.ResponseWriter, r *http.Request) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		perr := fault.AsError("handler "+pattern, rec)
		if s.logger != nil {
			s.logger.Error("handler panic",
				"pattern", pattern,
				"trace_id", sp.TraceIDString(),
				"err", perr,
				"stack", string(perr.Stack))
		}
		if sr, ok := w.(*statusRecorder); ok && sr.wrote {
			// The status line is gone; count the fault ourselves since
			// ServeHTTP's by-status accounting saw whatever the handler
			// managed to write before dying.
			s.serverErrors.Add(1)
			return
		}
		s.writeErrorTraced(w, sp.TraceIDString(), http.StatusInternalServerError, "%v", perr)
	}()
	if err := fault.Inject(fpHandler); err != nil {
		s.writeErrorTraced(w, sp.TraceIDString(), http.StatusInternalServerError, "%v", err)
		return
	}
	h(w, r)
}

// ServeHTTP implements http.Handler with request accounting. Individual
// requests are not logged — latency lands in the per-endpoint histograms
// (see Summary and /v1/metrics); only slow queries get their own line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	switch {
	case rec.status >= 500:
		s.serverErrors.Add(1)
	case rec.status >= 400:
		s.clientErrors.Add(1)
	}
}

// Drain marks the server as draining: health checks flip to 503 and new
// heavy requests are rejected, while requests already in flight run to
// completion. Call before http.Server.Shutdown.
func (s *Server) Drain() { s.DrainFor(0) }

// DrainFor is Drain with the drain window recorded: shed clients get a
// Retry-After spanning the window's remainder, after which a restarted
// (or failed-over) instance can serve them. timeout <= 0 records no
// deadline and rejections fall back to the slot-turnover estimate.
func (s *Server) DrainFor(timeout time.Duration) {
	if timeout > 0 {
		s.drainDeadline.Store(time.Now().Add(timeout).UnixNano())
	}
	s.draining.Store(true)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MetricsSnapshot returns the current serving counters.
func (s *Server) MetricsSnapshot() Metrics {
	return Metrics{
		Requests:     s.requests.Load(),
		InFlight:     s.inFlight.Load(),
		Rejected:     s.rejected.Load(),
		Cancelled:    s.cancelled.Load(),
		ClientErrors: s.clientErrors.Load(),
		ServerErrors: s.serverErrors.Load(),
	}
}

// Summary returns a one-line serving digest for periodic logging: request
// totals from the serving counters plus query latency quantiles pulled
// from the observation histograms. Cheap enough to call every few seconds.
func (s *Server) Summary() string {
	m := s.MetricsSnapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d inflight=%d shed=%d cancelled=%d 4xx=%d 5xx=%d",
		m.Requests, m.InFlight, m.Rejected, m.Cancelled, m.ClientErrors, m.ServerErrors)
	for i, class := range []string{"backward", "forward"} {
		snap := s.obs.Query.Latency[i].Snapshot()
		if snap.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, " | %s n=%d p50=%s p95=%s p99=%s", class, snap.Count,
			time.Duration(snap.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(snap.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(snap.Quantile(0.99)).Round(time.Microsecond))
	}
	return b.String()
}

// statusRecorder captures the response status for logging and metrics,
// and whether the response has started — the panic middleware may only
// substitute a structured 500 while nothing has been written.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.wrote = true
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// limited enforces the bounded in-flight cap and the drain flag around a
// heavy handler.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.rejected.Add(1)
			s.obs.HTTP.Shed.Inc()
			w.Header().Set("Retry-After", s.retryAfterDraining())
			s.writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			s.obs.HTTP.Shed.Inc()
			w.Header().Set("Retry-After", s.retryAfterCapacity())
			s.writeError(w, http.StatusServiceUnavailable, "server at capacity (%d requests in flight)", cap(s.sem))
			return
		}
		s.inFlight.Add(1)
		s.obs.HTTP.InFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			s.obs.HTTP.InFlight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// retryAfterCapacity estimates how long a shed client should wait for an
// in-flight slot to free. With every slot busy, the expected time until
// the first of them finishes is roughly the median query latency divided
// by the number in flight; with no latency history yet the 1s floor
// applies. Clamped to [1, 30] seconds — Retry-After is advice, not a
// schedule, and a stale large value parks clients for no reason.
func (s *Server) retryAfterCapacity() string {
	var p50 int64
	for i := range s.obs.Query.Latency {
		snap := s.obs.Query.Latency[i].Snapshot()
		if snap.Count == 0 {
			continue
		}
		if q := snap.Quantile(0.50); q > p50 {
			p50 = q
		}
	}
	inFlight := s.inFlight.Load()
	if inFlight < 1 {
		inFlight = 1
	}
	secs := int64(time.Duration(p50/inFlight) / time.Second)
	return clampRetrySeconds(secs, 30)
}

// retryAfterDraining spans the remaining drain window when DrainFor
// recorded one — the earliest a replacement instance can be listening —
// and otherwise falls back to the capacity estimate.
func (s *Server) retryAfterDraining() string {
	deadline := s.drainDeadline.Load()
	if deadline == 0 {
		return s.retryAfterCapacity()
	}
	secs := int64(time.Until(time.Unix(0, deadline)) / time.Second)
	return clampRetrySeconds(secs, 60)
}

func clampRetrySeconds(secs, max int64) string {
	if secs < 1 {
		secs = 1
	}
	if secs > max {
		secs = max
	}
	return strconv.FormatInt(secs, 10)
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	degraded := s.sys.DegradedStores()
	healing := 0
	for _, d := range degraded {
		if d.Healing {
			healing++
		}
	}
	health := subzero.WireHealth{
		Status:           "ok",
		UptimeNS:         time.Since(s.started).Nanoseconds(),
		Runs:             len(s.sys.Runs()),
		InFlight:         s.inFlight.Load(),
		IngestQueueDepth: s.obs.Ingest.QueueDepth.Load(),
		DegradedStores:   len(degraded),
		HealingStores:    healing,
	}
	status := http.StatusOK
	if s.draining.Load() {
		health.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, health)
}

// handleMetrics serves the full metric set in Prometheus text exposition
// format 0.0.4 — hand-rolled, no client library involved. Scrapers that
// advertise OpenMetrics support in Accept get the 1.0.0 exposition
// instead, which carries trace-ID exemplars on histogram buckets; the
// plain 0.0.4 body never does, so older parsers are unaffected.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var err error
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		err = s.obs.Registry.WriteOpenMetrics(w)
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		err = s.obs.Registry.WriteProm(w)
	}
	if err != nil && s.logger != nil {
		s.logger.Error("write metrics", "err", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	all := s.sys.AllStats()
	ops := make([]subzero.WireOpStats, len(all))
	for i, st := range all {
		ops[i] = subzero.NewWireOpStats(st)
	}
	m := s.MetricsSnapshot()
	s.writeJSON(w, http.StatusOK, subzero.WireStats{
		Runs:         len(s.sys.Runs()),
		LineageBytes: s.sys.LineageBytes(),
		ArrayBytes:   s.sys.ArrayBytes(),
		Ops:          ops,
		Ingest:       subzero.NewWireIngestStats(s.sys.IngestSnapshot()),
		Server: subzero.WireServerMetrics{
			Requests:     m.Requests,
			InFlight:     m.InFlight,
			Rejected:     m.Rejected,
			Cancelled:    m.Cancelled,
			ClientErrors: m.ClientErrors,
			ServerErrors: m.ServerErrors,
		},
		Workload: subzero.NewWireWorkloadProfile(s.obs),
		Degraded: subzero.NewWireDegradedStores(s.sys.DegradedStores()),
		Heals:    wireHealStats(s.sys),
		Stores:   subzero.NewWireStoreStats(s.sys.StoreInventory()),
	})
}

func wireHealStats(sys *subzero.System) subzero.WireHealStats {
	attempts, successes, failures := sys.HealCounts()
	return subzero.WireHealStats{Attempts: attempts, Successes: successes, Failures: failures}
}

// handleListTraces serves summaries of retained traces, newest first.
// Query params: run, direction, min_duration_ns, slow (true/1), limit.
func (s *Server) handleListTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := trace.Filter{
		Run:       q.Get("run"),
		Direction: q.Get("direction"),
	}
	if v := q.Get("min_duration_ns"); v != "" {
		ns, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ns < 0 {
			s.writeError(w, http.StatusBadRequest, "min_duration_ns must be a non-negative integer, got %q", v)
			return
		}
		f.MinDuration = time.Duration(ns)
	}
	if v := q.Get("slow"); v != "" {
		slow, err := strconv.ParseBool(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "slow must be a boolean, got %q", v)
			return
		}
		f.SlowOnly = slow
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.writeError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", v)
			return
		}
		f.Limit = n
	}
	traces := s.tracer.List(f)
	out := make([]subzero.WireTraceSummary, len(traces))
	for i, t := range traces {
		out[i] = subzero.NewWireTraceSummary(t)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleGetTrace serves one retained trace as a full span tree.
func (s *Server) handleGetTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, ok := trace.ParseTraceID(raw)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "malformed trace id %q: want 32 hex characters", raw)
		return
	}
	t := s.tracer.Get(id)
	if t == nil {
		s.writeError(w, http.StatusNotFound, "trace %s is not retained", raw)
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireTrace(t))
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	list := s.catalog.List()
	out := make([]subzero.WireWorkflowInfo, len(list))
	for i, wf := range list {
		out[i] = subzero.WireWorkflowInfo{
			Name:        wf.Name,
			Description: wf.Description,
			Plans:       wf.Plans,
			DefaultPlan: wf.DefaultPlan,
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req subzero.WireExecuteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Workflow == "" {
		s.writeError(w, http.StatusBadRequest, "request names no workflow")
		return
	}
	wf, err := s.catalog.Get(req.Workflow)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	plan, err := resolvePlan(wf, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, sources, err := wf.Build(req.Scale, req.Seed)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, err := s.sys.Execute(r.Context(), spec, plan, sources)
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	s.writeJSON(w, http.StatusCreated, subzero.NewWireRunInfo(run))
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	ids := s.sys.Runs()
	out := make([]*subzero.WireRunInfo, 0, len(ids))
	for _, id := range ids {
		run, err := s.sys.Run(id)
		if err != nil {
			continue // dropped between list and get
		}
		out = append(out, subzero.NewWireRunInfo(run))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireRunInfo(run))
}

func (s *Server) handleDropRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sys.DropRun(id); err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireQueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := req.Query.Query()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.sys.ValidateQuery(run, q); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res, err := s.sys.QueryWith(ctx, run, q, req.Options.Options())
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	s.logSlowQuery(r.Context(), run.ID, q, res)
	s.writeJSON(w, http.StatusOK, subzero.NewWireQueryResult(res))
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch contains no queries")
		return
	}
	queries := make([]subzero.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.Query()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	br, err := s.sys.QueryBatch(ctx, run, queries, req.Options.Options())
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	// A batch whose every query died on the request context counts as a
	// cancelled request even though QueryBatch itself returned no error.
	if ctxErr := r.Context().Err(); ctxErr != nil && br.Report.Failed == br.Report.Queries {
		s.cancelled.Add(1)
		s.obs.HTTP.Cancelled.Inc()
	}
	resp := subzero.WireBatchResponse{
		Results: make([]*subzero.WireQueryResult, len(queries)),
		Errors:  make([]string, len(queries)),
		Report:  subzero.NewWireBatchReport(br.Report),
	}
	for i := range queries {
		if br.Errs[i] != nil {
			resp.Errors[i] = br.Errs[i].Error()
			continue
		}
		s.logSlowQuery(r.Context(), run.ID, queries[i], br.Results[i])
		resp.Results[i] = subzero.NewWireQueryResult(br.Results[i])
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// logSlowQuery emits one structured record for a query whose latency
// reached the slow-query threshold, including the access path every step
// took — enough to see which operator and strategy dragged without
// re-running the query under a profiler. The request's trace is marked
// slow so the retention layer pins it regardless of eviction pressure.
func (s *Server) logSlowQuery(ctx context.Context, runID string, q subzero.Query, res *subzero.QueryResult) {
	if s.slowQuery <= 0 || res == nil || res.Elapsed < s.slowQuery {
		return
	}
	sp := trace.FromContext(ctx)
	sp.MarkSlow()
	if s.logger == nil {
		return
	}
	var steps strings.Builder
	for i, st := range res.Steps {
		if i > 0 {
			steps.WriteByte(',')
		}
		fmt.Fprintf(&steps, "%s[%d]:%s:%s", st.Node, st.InputIdx, st.AccessPath,
			st.Elapsed.Round(time.Microsecond))
	}
	s.logger.Warn("slow-query",
		"trace_id", sp.TraceIDString(),
		"run", runID,
		"direction", q.Direction.String(),
		"cells", len(q.Cells),
		"elapsed", res.Elapsed.Round(time.Microsecond),
		"steps", steps.String())
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireOptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	workload := make([]subzero.Query, len(req.Workload))
	for i, wq := range req.Workload {
		q, err := wq.Query()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "workload query %d: %v", i, err)
			return
		}
		workload[i] = q
	}
	forced := make(map[string][]subzero.Strategy, len(req.Forced))
	for node, names := range req.Forced {
		for _, name := range names {
			strat, err := subzero.ParseStrategy(name)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "forced strategy for %q: %v", node, err)
				return
			}
			forced[node] = append(forced[node], strat)
		}
	}
	rep, err := s.sys.OptimizeForced(r.Context(), run, workload, req.Constraints.Constraints(), forced)
	if err != nil {
		if isCancellation(r, err) {
			s.abortCancelled(w, r, err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireOptimizeReport(rep))
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

// queryContext derives the execution context for a query handler: the
// request context (so client disconnects still cancel) bounded by the
// configured server-side query timeout, when one is set.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.queryTimeout)
}

// resolveRun maps the {id} path segment to a registered run, writing a
// structured 404 when it is unknown.
func (s *Server) resolveRun(w http.ResponseWriter, r *http.Request) (*subzero.Run, bool) {
	id := r.PathValue("id")
	run, err := s.sys.Run(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return run, true
}

// decode reads a JSON body into dst, writing a structured 400 on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			s.writeError(w, http.StatusBadRequest, "request body is empty")
			return false
		}
		s.writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

// isCancellation reports whether err is the request context dying under a
// System call — the wrapped ctx.Err() of the cancellation paths.
func isCancellation(r *http.Request, err error) bool {
	if r.Context().Err() == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StatusClientClosedRequest is the non-standard (nginx) status the server
// records when a client disconnect aborts work mid-flight; the client is
// gone, so the code is for logs and metrics rather than the wire.
const StatusClientClosedRequest = 499

// abortCancelled accounts for a request whose client went away mid-query.
func (s *Server) abortCancelled(w http.ResponseWriter, r *http.Request, err error) {
	s.cancelled.Add(1)
	s.obs.HTTP.Cancelled.Inc()
	s.writeError(w, StatusClientClosedRequest, "request cancelled: %v", err)
}

// writeSystemError maps a System error onto the wire: cancellations are
// accounted separately; a query that raced a DropRun fails on the run's
// closed lineage store and becomes a 404 rather than a server fault;
// everything else is a 500.
func (s *Server) writeSystemError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case isCancellation(r, err):
		s.abortCancelled(w, r, err)
	case errors.Is(err, context.DeadlineExceeded):
		// The request context is alive (isCancellation said no), so the
		// deadline that fired is the server's own query timeout.
		s.writeError(w, http.StatusGatewayTimeout,
			"query exceeded the server query timeout (%s): %v", s.queryTimeout, err)
	case errors.Is(err, kvstore.ErrClosed):
		s.writeError(w, http.StatusNotFound, "run was dropped mid-request: %v", err)
	default:
		s.writeErrorTraced(w, trace.FromContext(r.Context()).TraceIDString(),
			http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeErrorTraced(w, "", status, format, args...)
}

// writeErrorTraced is writeError carrying the request's trace ID, quoted
// on server faults so a client report resolves to evidence at
// /v1/traces/{id} while the trace is retained.
func (s *Server) writeErrorTraced(w http.ResponseWriter, traceID string, status int, format string, args ...any) {
	s.writeJSON(w, status, subzero.WireError{Error: subzero.WireErrorBody{
		Status:  status,
		Message: fmt.Sprintf(format, args...),
		TraceID: traceID,
	}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && s.logger != nil {
		s.logger.Error("encode response", "err", err)
	}
}
