// Package server is SubZero's lineage-as-a-service layer: an HTTP/JSON
// API over the public System, exposing workflow execution, run lifecycle,
// lineage queries (single and batched over the System's worker pool),
// optimizer runs, and introspection.
//
// Design points, following the SMOKE argument that fine-grained lineage
// earns its keep only when external consumers get answers at interactive
// speed:
//
//   - Every request's context flows into the System's cancellation paths,
//     so a client that disconnects mid-query aborts operator re-execution
//     at the next boundary instead of burning the worker pool.
//   - A bounded in-flight cap sheds load with 503s instead of queueing
//     unboundedly; /v1/healthz flips to "draining" before shutdown so load
//     balancers stop routing while active queries drain.
//   - Errors are structured (subzero.WireError) and every request is
//     logged with its latency.
//
// Like the lineage it serves, the daemon's state is a recoverable cache:
// runs live in memory (and their lineage optionally in log files) and can
// always be re-created by re-executing the named workflow.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"subzero"
	"subzero/internal/kvstore"
)

// DefaultMaxInFlight bounds concurrently served heavy requests when the
// config leaves MaxInFlight unset.
const DefaultMaxInFlight = 64

// maxBodyBytes caps request bodies; query batches are the largest
// legitimate payloads and stay far below this.
const maxBodyBytes = 32 << 20

// Config assembles a Server.
type Config struct {
	// System is the lineage system to serve. Required.
	System *subzero.System
	// Catalog names the workflows the service may execute; nil selects
	// DefaultCatalog.
	Catalog *Catalog
	// MaxInFlight bounds concurrently served heavy requests (execute,
	// query, query-batch, optimize, drop); excess requests are rejected
	// with 503. <= 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// Logger receives one line per request; nil disables request logging.
	Logger *log.Logger
}

// Metrics is a point-in-time snapshot of the serving counters.
type Metrics struct {
	Requests     int64 // requests accepted into a handler
	InFlight     int64 // heavy requests currently executing
	Rejected     int64 // requests shed by the in-flight cap or drain
	Cancelled    int64 // requests aborted by client disconnect/timeout
	ClientErrors int64 // 4xx responses
	ServerErrors int64 // 5xx responses
}

// Server is the HTTP handler for the lineage service.
type Server struct {
	sys     *subzero.System
	catalog *Catalog
	mux     *http.ServeMux
	sem     chan struct{}
	logger  *log.Logger
	started time.Time

	draining atomic.Bool

	requests     atomic.Int64
	inFlight     atomic.Int64
	rejected     atomic.Int64
	cancelled    atomic.Int64
	clientErrors atomic.Int64
	serverErrors atomic.Int64
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.System == nil {
		return nil, fmt.Errorf("server: config needs a System")
	}
	if cfg.Catalog == nil {
		cfg.Catalog = DefaultCatalog()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	s := &Server{
		sys:     cfg.System,
		catalog: cfg.Catalog,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		logger:  cfg.Logger,
		started: time.Now(),
	}
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/workflows", s.handleWorkflows)
	s.mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGetRun)
	s.mux.HandleFunc("POST /v1/runs", s.limited(s.handleExecute))
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.limited(s.handleDropRun))
	s.mux.HandleFunc("POST /v1/runs/{id}/query", s.limited(s.handleQuery))
	s.mux.HandleFunc("POST /v1/runs/{id}/query-batch", s.limited(s.handleQueryBatch))
	s.mux.HandleFunc("POST /v1/runs/{id}/optimize", s.limited(s.handleOptimize))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
	})
	return s, nil
}

// ServeHTTP implements http.Handler with request accounting and logging.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	switch {
	case rec.status >= 500:
		s.serverErrors.Add(1)
	case rec.status >= 400:
		s.clientErrors.Add(1)
	}
	if s.logger != nil {
		s.logger.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	}
}

// Drain marks the server as draining: health checks flip to 503 and new
// heavy requests are rejected, while requests already in flight run to
// completion. Call before http.Server.Shutdown.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// MetricsSnapshot returns the current serving counters.
func (s *Server) MetricsSnapshot() Metrics {
	return Metrics{
		Requests:     s.requests.Load(),
		InFlight:     s.inFlight.Load(),
		Rejected:     s.rejected.Load(),
		Cancelled:    s.cancelled.Load(),
		ClientErrors: s.clientErrors.Load(),
		ServerErrors: s.serverErrors.Load(),
	}
}

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// limited enforces the bounded in-flight cap and the drain flag around a
// heavy handler.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.rejected.Add(1)
			s.writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "server at capacity (%d requests in flight)", cap(s.sem))
			return
		}
		s.inFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			<-s.sem
		}()
		h(w, r)
	}
}

// ---------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	health := subzero.WireHealth{
		Status:   "ok",
		UptimeNS: time.Since(s.started).Nanoseconds(),
		Runs:     len(s.sys.Runs()),
		InFlight: s.inFlight.Load(),
	}
	status := http.StatusOK
	if s.draining.Load() {
		health.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, health)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	all := s.sys.AllStats()
	ops := make([]subzero.WireOpStats, len(all))
	for i, st := range all {
		ops[i] = subzero.NewWireOpStats(st)
	}
	m := s.MetricsSnapshot()
	s.writeJSON(w, http.StatusOK, subzero.WireStats{
		Runs:         len(s.sys.Runs()),
		LineageBytes: s.sys.LineageBytes(),
		ArrayBytes:   s.sys.ArrayBytes(),
		Ops:          ops,
		Ingest:       subzero.NewWireIngestStats(s.sys.IngestSnapshot()),
		Server: subzero.WireServerMetrics{
			Requests:     m.Requests,
			InFlight:     m.InFlight,
			Rejected:     m.Rejected,
			Cancelled:    m.Cancelled,
			ClientErrors: m.ClientErrors,
			ServerErrors: m.ServerErrors,
		},
	})
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	list := s.catalog.List()
	out := make([]subzero.WireWorkflowInfo, len(list))
	for i, wf := range list {
		out[i] = subzero.WireWorkflowInfo{
			Name:        wf.Name,
			Description: wf.Description,
			Plans:       wf.Plans,
			DefaultPlan: wf.DefaultPlan,
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req subzero.WireExecuteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Workflow == "" {
		s.writeError(w, http.StatusBadRequest, "request names no workflow")
		return
	}
	wf, err := s.catalog.Get(req.Workflow)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	plan, err := resolvePlan(wf, req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, sources, err := wf.Build(req.Scale, req.Seed)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, err := s.sys.Execute(r.Context(), spec, plan, sources)
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	w.Header().Set("Location", "/v1/runs/"+run.ID)
	s.writeJSON(w, http.StatusCreated, subzero.NewWireRunInfo(run))
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	ids := s.sys.Runs()
	out := make([]*subzero.WireRunInfo, 0, len(ids))
	for _, id := range ids {
		run, err := s.sys.Run(id)
		if err != nil {
			continue // dropped between list and get
		}
		out = append(out, subzero.NewWireRunInfo(run))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireRunInfo(run))
}

func (s *Server) handleDropRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sys.DropRun(id); err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireQueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	q, err := req.Query.Query()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.sys.ValidateQuery(run, q); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.sys.QueryWith(r.Context(), run, q, req.Options.Options())
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireQueryResult(res))
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, "batch contains no queries")
		return
	}
	queries := make([]subzero.Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.Query()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		queries[i] = q
	}
	br, err := s.sys.QueryBatch(r.Context(), run, queries, req.Options.Options())
	if err != nil {
		s.writeSystemError(w, r, err)
		return
	}
	// A batch whose every query died on the request context counts as a
	// cancelled request even though QueryBatch itself returned no error.
	if ctxErr := r.Context().Err(); ctxErr != nil && br.Report.Failed == br.Report.Queries {
		s.cancelled.Add(1)
	}
	resp := subzero.WireBatchResponse{
		Results: make([]*subzero.WireQueryResult, len(queries)),
		Errors:  make([]string, len(queries)),
		Report:  subzero.NewWireBatchReport(br.Report),
	}
	for i := range queries {
		if br.Errs[i] != nil {
			resp.Errors[i] = br.Errs[i].Error()
			continue
		}
		resp.Results[i] = subzero.NewWireQueryResult(br.Results[i])
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	run, ok := s.resolveRun(w, r)
	if !ok {
		return
	}
	var req subzero.WireOptimizeRequest
	if !s.decode(w, r, &req) {
		return
	}
	workload := make([]subzero.Query, len(req.Workload))
	for i, wq := range req.Workload {
		q, err := wq.Query()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "workload query %d: %v", i, err)
			return
		}
		workload[i] = q
	}
	forced := make(map[string][]subzero.Strategy, len(req.Forced))
	for node, names := range req.Forced {
		for _, name := range names {
			strat, err := subzero.ParseStrategy(name)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "forced strategy for %q: %v", node, err)
				return
			}
			forced[node] = append(forced[node], strat)
		}
	}
	rep, err := s.sys.OptimizeForced(r.Context(), run, workload, req.Constraints.Constraints(), forced)
	if err != nil {
		if isCancellation(r, err) {
			s.abortCancelled(w, r, err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, subzero.NewWireOptimizeReport(rep))
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

// resolveRun maps the {id} path segment to a registered run, writing a
// structured 404 when it is unknown.
func (s *Server) resolveRun(w http.ResponseWriter, r *http.Request) (*subzero.Run, bool) {
	id := r.PathValue("id")
	run, err := s.sys.Run(id)
	if err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return run, true
}

// decode reads a JSON body into dst, writing a structured 400 on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		if errors.Is(err, io.EOF) {
			s.writeError(w, http.StatusBadRequest, "request body is empty")
			return false
		}
		s.writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	return true
}

// isCancellation reports whether err is the request context dying under a
// System call — the wrapped ctx.Err() of the cancellation paths.
func isCancellation(r *http.Request, err error) bool {
	if r.Context().Err() == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// StatusClientClosedRequest is the non-standard (nginx) status the server
// records when a client disconnect aborts work mid-flight; the client is
// gone, so the code is for logs and metrics rather than the wire.
const StatusClientClosedRequest = 499

// abortCancelled accounts for a request whose client went away mid-query.
func (s *Server) abortCancelled(w http.ResponseWriter, r *http.Request, err error) {
	s.cancelled.Add(1)
	s.writeError(w, StatusClientClosedRequest, "request cancelled: %v", err)
}

// writeSystemError maps a System error onto the wire: cancellations are
// accounted separately; a query that raced a DropRun fails on the run's
// closed lineage store and becomes a 404 rather than a server fault;
// everything else is a 500.
func (s *Server) writeSystemError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case isCancellation(r, err):
		s.abortCancelled(w, r, err)
	case errors.Is(err, kvstore.ErrClosed):
		s.writeError(w, http.StatusNotFound, "run was dropped mid-request: %v", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, subzero.WireError{Error: subzero.WireErrorBody{
		Status:  status,
		Message: fmt.Sprintf(format, args...),
	}})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil && s.logger != nil {
		s.logger.Printf("encode response: %v", err)
	}
}
