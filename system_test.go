package subzero_test

import (
	"context"
	"strings"
	"testing"

	"subzero"
)

// buildSystem makes a small two-operator pipeline through the public API.
func buildSystem(t *testing.T, opts ...subzero.Option) (*subzero.System, *subzero.Spec, *subzero.Array) {
	t.Helper()
	sys, err := subzero.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := subzero.NewSpec("api-test")
	spec.Add("double", subzero.UnaryOp("double", func(x float64) float64 { return 2 * x }),
		subzero.FromExternal("src"))
	spec.Add("sum", subzero.MeanAllOp(), subzero.FromNode("double"))
	src, err := subzero.NewArray("src", subzero.Shape{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Data() {
		src.Data()[i] = float64(i)
	}
	return sys, spec, src
}

func TestSystemExecuteAndQuery(t *testing.T) {
	sys, spec, src := buildSystem(t)
	run, err := sys.Execute(context.Background(), spec, subzero.Plan{
		"double": {subzero.StratMap},
		"sum":    {subzero.StratMap},
	}, map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Output("sum")
	if err != nil {
		t.Fatal(err)
	}
	if out.Get(0) != 15 { // mean of 2*(0..15) = 15
		t.Fatalf("mean=%f", out.Get(0))
	}
	res, err := sys.Query(context.Background(), run, subzero.BackwardQuery([]uint64{0},
		subzero.Step{Node: "sum"}, subzero.Step{Node: "double"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells()) != 16 {
		t.Fatalf("backward through mean should reach all 16 cells, got %d", len(res.Cells()))
	}
	// Stats are observable through the facade.
	if sys.Stats("double").Runs != 1 {
		t.Fatal("stats not recorded")
	}
	if len(sys.AllStats()) != 2 {
		t.Fatalf("AllStats=%d", len(sys.AllStats()))
	}
	if sys.ArrayBytes() <= 0 {
		t.Fatal("versioned arrays not accounted")
	}
}

func TestSystemWithStorageDir(t *testing.T) {
	dir := t.TempDir()
	sys, err := subzero.NewSystem(subzero.WithStorageDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec := subzero.NewSpec("disk")
	spec.Add("id", subzero.UnaryOp("id", func(x float64) float64 { return x }),
		subzero.FromExternal("src"))
	src, _ := subzero.NewArray("src", subzero.Shape{8})
	if _, err := sys.Execute(context.Background(), spec, subzero.Plan{"id": {subzero.StratFullOne}},
		map[string]*subzero.Array{"src": src}); err != nil {
		t.Fatal(err)
	}
	if sys.LineageBytes() <= 0 {
		t.Fatal("no lineage bytes on disk")
	}
}

func TestSystemQueryOptions(t *testing.T) {
	sys, spec, src := buildSystem(t, subzero.WithQueryOptions(subzero.QueryOptions{}))
	run, err := sys.Execute(context.Background(), spec, subzero.Plan{
		"double": {subzero.StratMap}, "sum": {subzero.StratMap},
	}, map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	q := subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "sum"})
	slow, err := sys.Query(context.Background(), run, q) // options disable entire-array
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sys.QueryWith(context.Background(), run, q, subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if slow.Bitmap.Count() != fast.Bitmap.Count() {
		t.Fatal("query options changed the answer")
	}
	if fast.Steps[0].AccessPath != "entire-array" {
		t.Fatalf("fast path=%q", fast.Steps[0].AccessPath)
	}
	if slow.Steps[0].AccessPath == "entire-array" {
		t.Fatal("disabled optimization used")
	}
}

func TestSystemOptimize(t *testing.T) {
	sys, spec, src := buildSystem(t)
	run, err := sys.Execute(context.Background(), spec, subzero.Plan{
		"double": {subzero.StratMap}, "sum": {subzero.StratMap},
	}, map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	workload := []subzero.Query{
		subzero.BackwardQuery([]uint64{3}, subzero.Step{Node: "double"}),
	}
	rep, err := sys.Optimize(context.Background(), run, workload, subzero.Constraints{MaxDiskBytes: subzero.MB(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Plan.Strategies("double") {
		if s.StoresPairs() {
			t.Fatalf("mapping operator got materialized lineage: %v", s)
		}
	}
	// Forced strategies flow through the facade.
	rep, err = sys.OptimizeForced(context.Background(), run, workload, subzero.Constraints{},
		map[string][]subzero.Strategy{"double": {subzero.StratFullOne}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Plan.Strategies("double") {
		if s == subzero.StratFullOne {
			found = true
		}
	}
	if !found {
		t.Fatalf("forced strategy missing: %v", rep.Plan["double"])
	}
}

func TestStandardKernels(t *testing.T) {
	for _, name := range []string{"gaussian3", "box3", "identity3"} {
		k, err := subzero.StandardKernels(name)
		if err != nil || len(k) != 3 {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := subzero.StandardKernels("bogus"); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatal("bogus kernel accepted")
	}
}

func TestMBHelper(t *testing.T) {
	if subzero.MB(1) != 1<<20 || subzero.MB(0.5) != 1<<19 {
		t.Fatalf("MB helper wrong: %d %d", subzero.MB(1), subzero.MB(0.5))
	}
}
