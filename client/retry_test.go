package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"subzero"
	"subzero/client"
)

// stubService answers every request from fn and counts hits.
func stubService(t *testing.T, fn func(n int64, w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fn(hits.Add(1), w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestClientRetries503ThenSucceeds: a load-shedding server answers 503
// twice; the idempotent call retries through it and succeeds on the
// third attempt.
func TestClientRetries503ThenSucceeds(t *testing.T) {
	ts, hits := stubService(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			http.Error(w, `{"error":{"message":"shedding"}}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("retries should have carried through the 503s: %v", err)
	}
	if h.Status != "ok" || hits.Load() != 3 {
		t.Fatalf("status=%q hits=%d", h.Status, hits.Load())
	}
}

// TestClientHonorsRetryAfter: the server's Retry-After advice (capped at
// MaxDelay) replaces the computed backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	ts, _ := stubService(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	// Retry-After of 1s is capped at MaxDelay, so the observed wait proves
	// the header was honored without making the test sleep a full second.
	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 50 * time.Millisecond,
	}))
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("retry waited only %v; Retry-After (capped to 50ms) was ignored", d)
	}
}

// TestClientRetriesAreIdempotentOnly: Execute may have registered a run
// before an ambiguous failure, so it is never retried — one 503, one
// request, one error.
func TestClientRetriesAreIdempotentOnly(t *testing.T) {
	ts, hits := stubService(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusServiceUnavailable)
	})
	c := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond,
	}))
	_, err := c.Execute(context.Background(), subzero.WireExecuteRequest{Workflow: "gate"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("execute error = %v, want 503", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("non-idempotent Execute was retried: %d requests", hits.Load())
	}

	// The same failure on an idempotent call burns every attempt, and the
	// caller still sees the plain *APIError, not the retry plumbing.
	_, err = c.Health(context.Background())
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("health error = %v, want 503", err)
	}
	if got := hits.Load(); got != 5 {
		t.Fatalf("idempotent call should retry 4 times total, got %d extra", got-1)
	}
}

// TestClientDeadlineSentinel: a call that dies on its context deadline
// matches both client.ErrDeadline and context.DeadlineExceeded.
func TestClientDeadlineSentinel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts, _ := stubService(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	c := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Health(ctx)
	if !errors.Is(err, client.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v must keep context.DeadlineExceeded reachable", err)
	}
}

// TestClientCapturesTraceID: the trace ID of a structured error response
// rides along on the APIError and shows up in its message.
func TestClientCapturesTraceID(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	ts, _ := stubService(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":{"message":"handler panicked","trace_id":"` + id + `"}}`))
	})
	c := client.New(ts.URL)
	_, err := c.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.TraceID != id || !strings.Contains(apiErr.Error(), id) {
		t.Fatalf("trace ID lost: %+v", apiErr)
	}
}
