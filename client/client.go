// Package client is the typed Go client for SubZero's lineage service
// (internal/server, cmd/subzero-serve). It round-trips every endpoint
// using the wire DTOs of the root package, so query results fetched over
// HTTP are directly comparable with in-process System results.
//
// All methods take a context; cancelling it aborts the HTTP request,
// which in turn cancels the server-side operation at its next boundary —
// a disconnected client never keeps an operator re-execution running.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"subzero"
)

// DefaultTimeout bounds every request issued through the client's
// default *http.Client, so a hung server can never park a caller
// forever. WithHTTPClient replaces the client — and this bound —
// wholesale; per-call context deadlines compose with it (the earlier
// one wins).
const DefaultTimeout = 60 * time.Second

// Client talks to one lineage service.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// RetryPolicy governs automatic retries of idempotent calls that fail
// with a 503 (the server shedding load or draining) or a connection
// error. Non-idempotent calls (Execute) are never retried: the request
// may have been applied before the failure.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the first backoff step; each retry doubles it, with
	// uniform jitter in [delay/2, delay) so synchronized clients spread
	// out. A server-provided Retry-After overrides the computed delay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (and any honored Retry-After).
	MaxDelay time.Duration
}

// DefaultRetryPolicy tries three times, backing off from 100ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second}
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test instrumentation). The default is an *http.Client
// bounded by DefaultTimeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetry replaces the retry policy; RetryPolicy{MaxAttempts: 1}
// disables retries entirely.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// New creates a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    &http.Client{Timeout: DefaultTimeout},
		retry: DefaultRetryPolicy(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a structured non-2xx response from the service.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided message
	TraceID string // server-side trace ID, when the response carried one
}

func (e *APIError) Error() string {
	if e.TraceID != "" {
		return fmt.Sprintf("subzero service: %s (http %d, trace %s)", e.Message, e.Status, e.TraceID)
	}
	return fmt.Sprintf("subzero service: %s (http %d)", e.Message, e.Status)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// ErrDeadline marks a call that died on a deadline — the per-call
// context's or the default HTTP client's DefaultTimeout. Returned errors
// match both ErrDeadline and context.DeadlineExceeded via errors.Is, so
// callers can distinguish "the server said no" from "the server never
// answered in time" without string matching.
var ErrDeadline = errors.New("subzero client: deadline exceeded")

// deadlineErr wraps a transport error that died on a deadline so it
// matches ErrDeadline while keeping context.DeadlineExceeded reachable
// through the original error chain.
func deadlineErr(method, path string, err error) error {
	return fmt.Errorf("%w: %s %s: %w", ErrDeadline, method, path, err)
}

type traceparentKey struct{}

// WithTraceparent returns a context carrying a W3C traceparent header
// value. Every request issued with the returned context propagates the
// header, so server-side spans join the caller's trace and the retained
// trace on the server shares the caller's trace ID. An empty header
// returns ctx unchanged.
func WithTraceparent(ctx context.Context, header string) context.Context {
	if header == "" {
		return ctx
	}
	return context.WithValue(ctx, traceparentKey{}, header)
}

func traceparentFrom(ctx context.Context) string {
	s, _ := ctx.Value(traceparentKey{}).(string)
	return s
}

// do issues a request and decodes the response into out (unless out is
// nil). Non-2xx responses become *APIError, preserving the server's
// structured message when present. Idempotent calls — every endpoint
// except Execute, whose POST registers a run — are retried per the
// client's RetryPolicy on 503s and connection errors.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doIdempotent(ctx, method, path, in, out, true)
}

func (c *Client) doIdempotent(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var blob []byte
	if in != nil {
		var err error
		if blob, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 || !idempotent {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retryDelay(attempt, lastErr)); err != nil {
				return fmt.Errorf("client: %s %s: retry abandoned: %w", method, path, err)
			}
		}
		err := c.doOnce(ctx, method, path, blob, in != nil, out)
		if err == nil || !c.retryable(ctx, err) {
			return stripRetryAfter(err)
		}
		lastErr = err
	}
	return stripRetryAfter(lastErr)
}

// stripRetryAfter unwraps the internal Retry-After carrier so callers
// always see the bare *APIError, whatever the retry policy did with it.
func stripRetryAfter(err error) error {
	var ue *unavailableError
	if errors.As(err, &ue) {
		return ue.APIError
	}
	return err
}

// doOnce issues exactly one HTTP round trip. The body is rebuilt from
// the marshaled blob so retries never replay a drained reader.
func (c *Client) doOnce(ctx context.Context, method, path string, blob []byte, hasBody bool, out any) error {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if tp := traceparentFrom(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return deadlineErr(method, path, err)
		}
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var wire subzero.WireError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		msg := strings.TrimSpace(string(blob))
		if err := json.Unmarshal(blob, &wire); err == nil && wire.Error.Message != "" {
			msg = wire.Error.Message
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: msg, TraceID: wire.Error.TraceID}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs > 0 {
				return &unavailableError{APIError: apiErr, retryAfter: time.Duration(secs) * time.Second}
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// unavailableError is a 503 carrying the server's Retry-After advice.
// It unwraps to the *APIError so errors.As sees the status as usual.
type unavailableError struct {
	*APIError
	retryAfter time.Duration
}

func (e *unavailableError) Unwrap() error { return e.APIError }

// retryable reports whether err is worth another attempt: a 503 (load
// shed, drain) or a connection-level failure. Deadline expiry is final —
// the caller's budget is spent — as is any other HTTP status: the server
// answered, and answered no.
func (c *Client) retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil || errors.Is(err, ErrDeadline) || errors.Is(err, context.Canceled) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusServiceUnavailable
	}
	return true // connection error: nothing reached the server's handler
}

// retryDelay computes the wait before retry number attempt (1-based):
// the server's Retry-After when the last failure carried one, otherwise
// exponential backoff from BaseDelay with uniform jitter in
// [delay/2, delay), both capped at MaxDelay.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	var ue *unavailableError
	if errors.As(lastErr, &ue) && ue.retryAfter > 0 {
		return min(ue.retryAfter, c.retry.MaxDelay)
	}
	delay := c.retry.BaseDelay << (attempt - 1)
	if delay > c.retry.MaxDelay || delay <= 0 {
		delay = c.retry.MaxDelay
	}
	if delay <= 0 {
		return 0
	}
	half := delay / 2
	return half + rand.N(delay-half)
}

// sleepCtx waits d or until the context dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Health fetches GET /v1/healthz. A draining server answers 503, which
// surfaces as an *APIError with that status.
func (c *Client) Health(ctx context.Context) (*subzero.WireHealth, error) {
	var out subzero.WireHealth
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*subzero.WireStats, error) {
	var out subzero.WireStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StoreStats fetches the per-store footprint inventory from
// GET /v1/stats: each lineage store's compressed vs logical bytes and
// the resulting compression ratio.
func (c *Client) StoreStats(ctx context.Context) ([]subzero.WireStoreStats, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	return stats.Stores, nil
}

// WorkloadProfile fetches the server's live workload profile — the
// backward/forward mix, per-class latency quantiles, and per-operator
// access-path hit counts from GET /v1/stats.
func (c *Client) WorkloadProfile(ctx context.Context) (*subzero.WireWorkloadProfile, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	return &stats.Workload, nil
}

// Metrics fetches GET /v1/metrics and parses the Prometheus text
// exposition into a flat map keyed by sample name including its label
// set, exactly as exposed (e.g. `subzero_queries_total{direction="backward"}`).
// Comment lines (# HELP / # TYPE) are skipped. For structured access
// prefer Stats or WorkloadProfile; this accessor exists so tests and
// tooling can assert on the exposition without a Prometheus dependency.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if tp := traceparentFrom(ctx); tp != "" {
		req.Header.Set("Traceparent", tp)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("client: read /v1/metrics: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(blob))
		var wire subzero.WireError
		if err := json.Unmarshal(blob, &wire); err == nil && wire.Error.Message != "" {
			msg = wire.Error.Message
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return ParseExposition(string(blob))
}

// ParseExposition parses Prometheus text-format samples into a map keyed
// by `name{labels}` (or bare name when unlabeled). The key ends at the
// label set's closing brace — found by scanning, so label values may
// contain spaces, escaped quotes, and escaped backslashes — and the value
// is the first field after it; trailing fields (timestamps, OpenMetrics
// exemplars) are ignored. A body without a trailing newline parses the
// same as one with it.
func ParseExposition(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var cut int
		if open := strings.IndexByte(line, '{'); open >= 0 {
			end, ok := endOfLabels(line, open)
			if !ok {
				return nil, fmt.Errorf("client: metrics line %d: unterminated label set: %q", lineNo+1, line)
			}
			cut = end
		} else {
			cut = strings.IndexAny(line, " \t")
		}
		if cut <= 0 || cut >= len(line) {
			return nil, fmt.Errorf("client: metrics line %d: no value separator: %q", lineNo+1, line)
		}
		key := line[:cut]
		rest := strings.TrimLeft(line[cut:], " \t")
		if k := strings.IndexAny(rest, " \t"); k >= 0 {
			rest = rest[:k]
		}
		f, err := parsePromValue(rest)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %d: %w", lineNo+1, err)
		}
		out[key] = f
	}
	return out, nil
}

// endOfLabels returns the index just past the '}' closing the label set
// opened at open, honoring quoted label values with \" and \\ escapes.
func endOfLabels(line string, open int) (int, bool) {
	inQuote, escaped := false, false
	for j := open + 1; j < len(line); j++ {
		c := line[j]
		switch {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '}':
			return j + 1, true
		}
	}
	return 0, false
}

func parsePromValue(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty sample value")
	}
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q: %w", s, err)
	}
	return f, nil
}

// TraceListOptions filters GET /v1/traces. The zero value lists the most
// recent traces with the server's default limit.
type TraceListOptions struct {
	Run         string        // only traces touching this run ID
	Direction   string        // "backward" or "forward"
	MinDuration time.Duration // only traces at least this long end-to-end
	SlowOnly    bool          // only traces pinned by the slow threshold
	Limit       int           // max summaries returned (server default 100)
}

// Traces lists retained trace summaries, newest first (GET /v1/traces).
func (c *Client) Traces(ctx context.Context, opts TraceListOptions) ([]subzero.WireTraceSummary, error) {
	q := url.Values{}
	if opts.Run != "" {
		q.Set("run", opts.Run)
	}
	if opts.Direction != "" {
		q.Set("direction", opts.Direction)
	}
	if opts.MinDuration > 0 {
		q.Set("min_duration_ns", strconv.FormatInt(opts.MinDuration.Nanoseconds(), 10))
	}
	if opts.SlowOnly {
		q.Set("slow", "true")
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	path := "/v1/traces"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out []subzero.WireTraceSummary
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Trace fetches one retained trace as a full span tree by its 32-hex-char
// trace ID (GET /v1/traces/{id}). A trace that was never sampled or has
// been evicted surfaces as an *APIError with status 404.
func (c *Client) Trace(ctx context.Context, id string) (*subzero.WireTrace, error) {
	var out subzero.WireTrace
	if err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Workflows lists the server's executable workflow catalog.
func (c *Client) Workflows(ctx context.Context) ([]subzero.WireWorkflowInfo, error) {
	var out []subzero.WireWorkflowInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workflows", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Execute runs a catalog workflow on the server (POST /v1/runs) and
// returns the registered run. Execute is the one non-idempotent call —
// a retry after an ambiguous failure could register a second run — so
// it is never retried automatically; callers who can tolerate
// duplicates retry by listing runs first.
func (c *Client) Execute(ctx context.Context, req subzero.WireExecuteRequest) (*subzero.WireRunInfo, error) {
	var out subzero.WireRunInfo
	if err := c.doIdempotent(ctx, http.MethodPost, "/v1/runs", req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Runs lists every registered run.
func (c *Client) Runs(ctx context.Context) ([]*subzero.WireRunInfo, error) {
	var out []*subzero.WireRunInfo
	if err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Run fetches one run by ID.
func (c *Client) Run(ctx context.Context, id string) (*subzero.WireRunInfo, error) {
	var out subzero.WireRunInfo
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DropRun releases a run's lineage stores and array versions on the
// server (DELETE /v1/runs/{id}).
func (c *Client) DropRun(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/runs/"+url.PathEscape(id), nil, nil)
}

// Query executes one lineage query against a run. opts may be nil for the
// server's defaults (every optimization enabled).
func (c *Client) Query(ctx context.Context, runID string, q subzero.Query, opts *subzero.WireQueryOptions) (*subzero.WireQueryResult, error) {
	req := subzero.WireQueryRequest{Query: subzero.NewWireQuery(q), Options: opts}
	var out subzero.WireQueryResult
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch executes many independent queries against a run over the
// server's bounded worker pool. The response is index-aligned with qs.
func (c *Client) QueryBatch(ctx context.Context, runID string, qs []subzero.Query, opts *subzero.WireQueryOptions) (*subzero.WireBatchResponse, error) {
	req := subzero.WireBatchRequest{Queries: make([]subzero.WireQuery, len(qs)), Options: opts}
	for i, q := range qs {
		req.Queries[i] = subzero.NewWireQuery(q)
	}
	var out subzero.WireBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/query-batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Optimize runs the strategy optimizer against a profiling run. forced
// pins strategies per node (node -> wire strategy names); it may be nil.
func (c *Client) Optimize(ctx context.Context, runID string, workload []subzero.Query, cons subzero.Constraints, forced map[string][]string) (*subzero.WireOptimizeReport, error) {
	req := subzero.WireOptimizeRequest{
		Workload:    make([]subzero.WireQuery, len(workload)),
		Constraints: subzero.NewWireConstraints(cons),
		Forced:      forced,
	}
	for i, q := range workload {
		req.Workload[i] = subzero.NewWireQuery(q)
	}
	var out subzero.WireOptimizeReport
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
