// Package client is the typed Go client for SubZero's lineage service
// (internal/server, cmd/subzero-serve). It round-trips every endpoint
// using the wire DTOs of the root package, so query results fetched over
// HTTP are directly comparable with in-process System results.
//
// All methods take a context; cancelling it aborts the HTTP request,
// which in turn cancels the server-side operation at its next boundary —
// a disconnected client never keeps an operator re-execution running.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"subzero"
)

// Client talks to one lineage service.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New creates a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a structured non-2xx response from the service.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("subzero service: %s (http %d)", e.Message, e.Status)
}

// IsNotFound reports whether err is an APIError with status 404.
func IsNotFound(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound
}

// do issues one request and decodes the response into out (unless out is
// nil). Non-2xx responses become *APIError, preserving the server's
// structured message when present.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var wire subzero.WireError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		msg := strings.TrimSpace(string(blob))
		if err := json.Unmarshal(blob, &wire); err == nil && wire.Error.Message != "" {
			msg = wire.Error.Message
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Health fetches GET /v1/healthz. A draining server answers 503, which
// surfaces as an *APIError with that status.
func (c *Client) Health(ctx context.Context) (*subzero.WireHealth, error) {
	var out subzero.WireHealth
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches GET /v1/stats.
func (c *Client) Stats(ctx context.Context) (*subzero.WireStats, error) {
	var out subzero.WireStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WorkloadProfile fetches the server's live workload profile — the
// backward/forward mix, per-class latency quantiles, and per-operator
// access-path hit counts from GET /v1/stats.
func (c *Client) WorkloadProfile(ctx context.Context) (*subzero.WireWorkloadProfile, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return nil, err
	}
	return &stats.Workload, nil
}

// Metrics fetches GET /v1/metrics and parses the Prometheus text
// exposition into a flat map keyed by sample name including its label
// set, exactly as exposed (e.g. `subzero_queries_total{direction="backward"}`).
// Comment lines (# HELP / # TYPE) are skipped. For structured access
// prefer Stats or WorkloadProfile; this accessor exists so tests and
// tooling can assert on the exposition without a Prometheus dependency.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("client: read /v1/metrics: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := strings.TrimSpace(string(blob))
		var wire subzero.WireError
		if err := json.Unmarshal(blob, &wire); err == nil && wire.Error.Message != "" {
			msg = wire.Error.Message
		}
		return nil, &APIError{Status: resp.StatusCode, Message: msg}
	}
	return ParseExposition(string(blob))
}

// ParseExposition parses Prometheus text-format samples into a map keyed
// by `name{labels}` (or bare name when unlabeled). The value separator is
// the LAST space on the line: label values may themselves contain spaces.
func ParseExposition(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("client: metrics line %d: no value separator: %q", lineNo+1, line)
		}
		key, val := line[:cut], line[cut+1:]
		f, err := parsePromValue(val)
		if err != nil {
			return nil, fmt.Errorf("client: metrics line %d: %w", lineNo+1, err)
		}
		out[key] = f
	}
	return out, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q: %w", s, err)
	}
	return f, nil
}

// Workflows lists the server's executable workflow catalog.
func (c *Client) Workflows(ctx context.Context) ([]subzero.WireWorkflowInfo, error) {
	var out []subzero.WireWorkflowInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workflows", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Execute runs a catalog workflow on the server (POST /v1/runs) and
// returns the registered run.
func (c *Client) Execute(ctx context.Context, req subzero.WireExecuteRequest) (*subzero.WireRunInfo, error) {
	var out subzero.WireRunInfo
	if err := c.do(ctx, http.MethodPost, "/v1/runs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Runs lists every registered run.
func (c *Client) Runs(ctx context.Context) ([]*subzero.WireRunInfo, error) {
	var out []*subzero.WireRunInfo
	if err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Run fetches one run by ID.
func (c *Client) Run(ctx context.Context, id string) (*subzero.WireRunInfo, error) {
	var out subzero.WireRunInfo
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DropRun releases a run's lineage stores and array versions on the
// server (DELETE /v1/runs/{id}).
func (c *Client) DropRun(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/runs/"+url.PathEscape(id), nil, nil)
}

// Query executes one lineage query against a run. opts may be nil for the
// server's defaults (every optimization enabled).
func (c *Client) Query(ctx context.Context, runID string, q subzero.Query, opts *subzero.WireQueryOptions) (*subzero.WireQueryResult, error) {
	req := subzero.WireQueryRequest{Query: subzero.NewWireQuery(q), Options: opts}
	var out subzero.WireQueryResult
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryBatch executes many independent queries against a run over the
// server's bounded worker pool. The response is index-aligned with qs.
func (c *Client) QueryBatch(ctx context.Context, runID string, qs []subzero.Query, opts *subzero.WireQueryOptions) (*subzero.WireBatchResponse, error) {
	req := subzero.WireBatchRequest{Queries: make([]subzero.WireQuery, len(qs)), Options: opts}
	for i, q := range qs {
		req.Queries[i] = subzero.NewWireQuery(q)
	}
	var out subzero.WireBatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/query-batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Optimize runs the strategy optimizer against a profiling run. forced
// pins strategies per node (node -> wire strategy names); it may be nil.
func (c *Client) Optimize(ctx context.Context, runID string, workload []subzero.Query, cons subzero.Constraints, forced map[string][]string) (*subzero.WireOptimizeReport, error) {
	req := subzero.WireOptimizeRequest{
		Workload:    make([]subzero.WireQuery, len(workload)),
		Constraints: subzero.NewWireConstraints(cons),
		Forced:      forced,
	}
	for i, q := range workload {
		req.Workload[i] = subzero.NewWireQuery(q)
	}
	var out subzero.WireOptimizeReport
	if err := c.do(ctx, http.MethodPost, "/v1/runs/"+url.PathEscape(runID)+"/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
