package client_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"subzero"
	"subzero/client"
)

func TestParseExpositionEdgeCases(t *testing.T) {
	body := strings.Join([]string{
		`# HELP m_total a counter`,
		`# TYPE m_total counter`,
		`m_total 3`,
		`m_total{direction="backward"} 7`,
		// Label values with spaces, escaped quotes, and escaped
		// backslashes: the key must end at the real closing brace.
		`m_msg{text="a b"} 1`,
		`m_msg{text="say \"hi\" twice"} 2`,
		`m_msg{path="C:\\temp\\x"} 3`,
		`m_msg{text="brace \"}\" inside"} 4`,
		// Non-finite samples.
		`m_nan NaN`,
		`m_bucket{le="+Inf"} 42`,
		`m_inf +Inf`,
		`m_neg_inf -Inf`,
		// Optional trailing timestamp is ignored, not glued to the key.
		`m_ts 5 1700000000000`,
		`m_ts_labeled{x="y"} 6 1700000000000`,
		// OpenMetrics exemplar suffix is ignored too.
		`m_ex_bucket{le="0.1"} 9 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 1e-07`,
		`# EOF`,
	}, "\n") // deliberately no trailing newline

	got, err := client.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`m_total`:                          3,
		`m_total{direction="backward"}`:    7,
		`m_msg{text="a b"}`:                1,
		`m_msg{text="say \"hi\" twice"}`:   2,
		`m_msg{path="C:\\temp\\x"}`:        3,
		`m_msg{text="brace \"}\" inside"}`: 4,
		`m_bucket{le="+Inf"}`:              42,
		`m_inf`:                            math.Inf(1),
		`m_neg_inf`:                        math.Inf(-1),
		`m_ts`:                             5,
		`m_ts_labeled{x="y"}`:              6,
		`m_ex_bucket{le="0.1"}`:            9,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("sample %q = %v, want %v", k, got[k], v)
		}
	}
	if !math.IsNaN(got["m_nan"]) {
		t.Errorf("m_nan = %v, want NaN", got["m_nan"])
	}
	if len(got) != len(want)+1 { // +1 for the NaN sample
		t.Errorf("parsed %d samples, want %d: %v", len(got), len(want)+1, got)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unterminated labels", `m{text="no close 1`},
		{"missing value", `m_alone`},
		{"missing value after labels", `m{x="y"}`},
		{"garbage value", `m not-a-number`},
	}
	for _, tc := range cases {
		if _, err := client.ParseExposition(tc.body); err == nil {
			t.Errorf("%s: parsed %q without error", tc.name, tc.body)
		}
	}
}

// TestWithTraceparentPropagates asserts every client request issued with
// a traceparent-carrying context sends the header, including the raw
// /v1/metrics fetch that bypasses do().
func TestWithTraceparentPropagates(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("Traceparent"))
		if strings.HasSuffix(r.URL.Path, "/metrics") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte("m_total 1\n"))
			return
		}
		json.NewEncoder(w).Encode(subzero.WireHealth{Status: "ok"})
	}))
	defer ts.Close()

	c := client.New(ts.URL)
	ctx := client.WithTraceparent(context.Background(), tp)
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("requests seen: %d, want 2", len(got))
	}
	for i, h := range got {
		if h != tp {
			t.Errorf("request %d traceparent = %q, want %q", i, h, tp)
		}
	}
	// Without the helper the header is absent.
	got = nil
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got[0] != "" {
		t.Errorf("unexpected traceparent %q on plain context", got[0])
	}
}
